"""Tokenizer for the SPARQL subset grammar."""

from __future__ import annotations

import re
from typing import List

from .errors import SparqlParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: keywords recognised case-insensitively; the tokenizer upper-cases them.
KEYWORDS = {
    "SELECT", "ASK", "WHERE", "FILTER", "OPTIONAL", "UNION", "GROUP", "BY",
    "HAVING", "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "DISTINCT", "AS",
    "PREFIX", "BASE", "COUNT", "SUM", "MIN", "MAX", "AVG", "NOT", "IN",
    "EXISTS", "TRUE", "FALSE", "UNDEF", "VALUES", "BIND", "A",
}

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("IRIREF", r"<[^\x00-\x20<>\"{}|^`\\]*>"),
    ("VAR", r"[?$][A-Za-z_][A-Za-z_0-9]*"),
    ("STRING", r'"(?:[^"\\\n\r]|\\.)*"' + r"|'(?:[^'\\\n\r]|\\.)*'"),
    ("LANGTAG", r"@[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*"),
    ("DOUBLE_CARET", r"\^\^"),
    ("DOUBLE", r"[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+)"),
    ("DECIMAL", r"[+-]?\d*\.\d+"),
    ("INTEGER", r"[+-]?\d+"),
    ("BNODE_LABEL", r"_:[A-Za-z0-9][A-Za-z0-9_.-]*"),
    ("PNAME", r"(?:[A-Za-z][\w.-]*)?:[\w.-]*(?<!\.)|(?:[A-Za-z][\w.-]*)?:"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("NEQ", r"!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("AND", r"&&"),
    ("OR", r"\|\|"),
    ("BANG", r"!"),
    ("EQ", r"="),
    ("LT", r"<"),
    ("GT", r">"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("DOT", r"\."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class Token:
    """One lexical token with position information."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`SparqlParseError` on junk."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise SparqlParseError(f"unexpected character {text[pos]!r}",
                                   line, pos - line_start + 1)
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        if kind == "NAME" and value.upper() in KEYWORDS:
            tokens.append(Token("KEYWORD", value.upper(), line, column))
        elif kind == "IRIREF" and value == "<":  # pragma: no cover - defensive
            raise SparqlParseError("unterminated IRI", line, column)
        elif kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens
