"""Synthetic workloads: graphs and schemas with known ground truth.

The paper evaluates its algorithm on RDF data it does not publish (and its
benchmark suite is listed as future work), so this package provides the
synthetic equivalents used by the examples, tests and benchmarks:

* :mod:`repro.workloads.people` — the Example 1/2 Person workload at scale,
  plus chains, cycles and trees of ``foaf:knows`` for recursion benchmarks,
* :mod:`repro.workloads.scaling` — parameterised neighbourhood/expression
  pairs (star, interleave width, balanced alternation, cardinality ranges)
  with known verdicts, driving the engine-comparison benchmarks,
* :mod:`repro.workloads.portal` — a DCAT-like linked-data portal with three
  mutually referencing shapes and controlled violations,
* :mod:`repro.workloads.kb` — a hub-heavy YAGO-style knowledge base whose
  entities are structural clones, driving the signature-dedupe hot-path
  benchmark.
"""

from .people import (
    PAPER_EXAMPLE_TURTLE,
    PERSON_SCHEMA_SHEXC,
    PersonWorkload,
    generate_community_workload,
    generate_person_workload,
    knows_chain_graph,
    knows_cycle_graph,
    knows_tree_graph,
    paper_example_graph,
    person_schema,
)
from .kb import (
    KB_SCHEMA_SHEXC,
    KBWorkload,
    generate_kb_workload,
    kb_schema,
)
from .portal import (
    DCAT,
    PORTAL_SCHEMA_SHEXC,
    PortalWorkload,
    generate_portal_workload,
    portal_schema,
)
from .scaling import (
    NeighbourhoodCase,
    balanced_alternation_case,
    cardinality_case,
    interleave_width_case,
    mixed_portal_case,
    paper_interleave_case,
    shuffled,
    star_case,
)

__all__ = [
    "PAPER_EXAMPLE_TURTLE", "PERSON_SCHEMA_SHEXC",
    "paper_example_graph", "person_schema",
    "PersonWorkload", "generate_person_workload", "generate_community_workload",
    "knows_chain_graph", "knows_cycle_graph", "knows_tree_graph",
    "KB_SCHEMA_SHEXC", "KBWorkload", "kb_schema", "generate_kb_workload",
    "DCAT", "PORTAL_SCHEMA_SHEXC", "portal_schema",
    "PortalWorkload", "generate_portal_workload",
    "NeighbourhoodCase", "star_case", "paper_interleave_case",
    "interleave_width_case", "balanced_alternation_case", "cardinality_case",
    "mixed_portal_case", "shuffled",
]
