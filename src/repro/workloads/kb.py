"""Hub-heavy knowledge-base workload: the signature-dedupe stress test.

YAGO-style knowledge bases pair a handful of *hub* resources (categories,
countries, portals) with very many *entity* resources that are structural
clones of each other: different literal values, identical neighbourhood
shape.  This module generates that profile with known ground truth so the
hot-path benchmark can measure the neighbourhood-signature verdict dedupe
(:class:`repro.shex.cache.SignatureCache`) under realistic conditions:

* ``<Entity>`` is reference-free but **facet-heavy** — every constraint
  carries a facet (``MINLENGTH``, ``MININCLUSIVE``, ``PATTERN``), which the
  compiled value screen refuses to evaluate, so the prefilter returns
  *unknown* and every entity reaches the derivative engine.  Entities are
  drawn from a small pool of structural templates, so thousands of nodes
  collapse onto a few dozen signatures and the cache converts all but the
  first engine run per template into a dictionary hit.
* ``<Hub>`` references ``@<Entity>`` with power-law out-degree.  Because
  conforming entities are not statically decidable, hub nodes are
  signature-*open* and always take the engine path — the workload therefore
  exercises the mixed eligible/open pipeline, not just the happy path.
* ``ex:seeAlso`` arcs target empty-neighbourhood IRIs against the nullable,
  fully screenable ``<Note>`` shape, keeping a statically decidable
  reference in the mix.
* Entities are singleton components and hubs only point downstream, so the
  reference condensation is wide and shallow — friendly to ``--jobs 2``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rdf.columnar import ColumnarGraph
from ..rdf.errors import GraphError
from ..rdf.graph import Graph, TripleStore
from ..rdf.namespaces import EX, XSD
from ..rdf.terms import IRI, Literal, Triple
from ..shex.schema import Schema
from ..shex.shexc import parse_shexc

__all__ = [
    "KB_SCHEMA_SHEXC",
    "KBWorkload",
    "kb_schema",
    "generate_kb_workload",
]

#: the knowledge-base schema: facet-heavy entities, referencing hubs,
#: and a nullable note shape for statically decidable reference targets.
KB_SCHEMA_SHEXC = """\
PREFIX ex:  <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

<Entity> {
  ex:label      xsd:string MINLENGTH 3 + ,
  ex:population xsd:integer MININCLUSIVE 0 ,
  ex:code       xsd:string PATTERN "^[A-Z]{2,4}$" ,
  ex:founded    xsd:integer MININCLUSIVE 1 MAXINCLUSIVE 2100 ? ,
  ex:motto      xsd:string MINLENGTH 1 * ,
  ex:alias      xsd:string MINLENGTH 1 * ,
  ex:tag        xsd:string PATTERN "^[a-z][a-z0-9-]*$" *
}

<Hub> {
  ex:label   xsd:string MINLENGTH 3 ,
  ex:links   @<Entity> + ,
  ex:seeAlso @<Note> *
}

<Note> {
  ex:note xsd:string *
}
"""


def kb_schema() -> Schema:
    """Return the parsed knowledge-base schema."""
    return parse_shexc(KB_SCHEMA_SHEXC)


def _make_graph(store: str) -> TripleStore:
    if store == "dict":
        return Graph()
    if store == "columnar":
        return ColumnarGraph()
    raise GraphError(f"unknown store {store!r}: expected 'dict' or 'columnar'")


#: structural templates: (label, founded, motto, alias, tag) arc counts.
#: Literal values vary per entity but are drawn from small pools (real KBs
#: reuse codes, years and category tags heavily), and every valid value
#: passes its facet, so all entities stamped from one template share a
#: neighbourhood signature — and the derivative/verdict memo tables stay
#: warm across entities in both the cached and the uncached arms.
_ENTITY_TEMPLATES = [(labels, founded, mottos, 2 + 2 * ((labels + mottos) % 3),
                      4 + 4 * ((labels + founded) % 2))
                     for labels in (1, 2, 3)
                     for founded in (0, 1)
                     for mottos in (0, 1, 2)]

_WORDS = ["Aurora", "Borealis", "Cascade", "Delta", "Equinox", "Fjord",
          "Granite", "Harbor", "Isthmus", "Juniper", "Keystone", "Lagoon",
          "Meridian", "Nimbus", "Obsidian", "Plateau"]

_TAGS = ["ancient", "capital", "coastal", "disputed", "endemic", "federal",
         "historic", "island", "landlocked", "medieval", "modern",
         "northern", "port-city", "southern", "tropical", "unesco"]

#: local violations of the Entity shape, cycled deterministically.
_ENTITY_VIOLATIONS = ["short_label", "negative_population", "bad_code",
                      "missing_code", "extra_predicate"]


@dataclass
class KBWorkload:
    """A generated knowledge-base graph together with its ground truth."""

    graph: TripleStore
    schema: Schema
    #: entity nodes that must conform to ``<Entity>``.
    valid_entities: List[IRI] = field(default_factory=list)
    #: entity nodes that must not conform, with the reason they were broken.
    invalid_entities: Dict[IRI, str] = field(default_factory=dict)
    #: hub nodes that must conform to ``<Hub>``.
    valid_hubs: List[IRI] = field(default_factory=list)
    #: hub nodes that must not conform, with the reason.
    invalid_hubs: Dict[IRI, str] = field(default_factory=dict)

    @property
    def entities(self) -> List[IRI]:
        """Every entity node, valid and invalid, in name order."""
        return sorted(set(self.valid_entities) | set(self.invalid_entities),
                      key=lambda term: term.value)

    @property
    def hubs(self) -> List[IRI]:
        """Every hub node, valid and invalid, in name order."""
        return sorted(set(self.valid_hubs) | set(self.invalid_hubs),
                      key=lambda term: term.value)


class _ValuePools:
    """Small per-workload value pools: Zipf-style literal reuse across entities."""

    def __init__(self, rng: random.Random) -> None:
        self.labels = [f"{rng.choice(_WORDS)} {rng.choice(_WORDS)}"
                       for _ in range(48)]
        self.populations = [rng.randint(0, 10_000_000) for _ in range(64)]
        self.codes = ["".join(rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
                              for _ in range(rng.randint(2, 4)))
                      for _ in range(24)]
        self.years = [rng.randint(800, 2026) for _ in range(32)]
        self.mottos = [f"{rng.choice(_WORDS)} forever {index}"
                       for index in range(24)]
        self.aliases = [f"{rng.choice(_WORDS)}-{rng.choice(_TAGS)}"
                        for _ in range(32)]


def _emit_entity(graph: TripleStore, rng: random.Random, pools: _ValuePools,
                 entity: IRI, template: tuple, violation: Optional[str]) -> None:
    """Emit one entity's triples from ``template`` (plus any violation)."""
    labels, founded, mottos, aliases, tags = template
    # multi-valued arcs sample *distinct* pool values: a repeated literal
    # would collapse in the set-based store and change the arc count the
    # template promises (and with it the neighbourhood signature).
    for index, value in enumerate(rng.sample(pools.labels, labels)):
        if violation == "short_label" and index == 0:
            graph.add(Triple(entity, EX.label, Literal("Ab")))
        else:
            graph.add(Triple(entity, EX.label, Literal(value)))
    population = rng.choice(pools.populations)
    if violation == "negative_population":
        population = -1 - population
    graph.add(Triple(entity, EX.population, Literal(population)))
    if violation == "bad_code":
        graph.add(Triple(entity, EX.code, Literal("x9")))
    elif violation != "missing_code":
        graph.add(Triple(entity, EX.code, Literal(rng.choice(pools.codes))))
    if founded:
        graph.add(Triple(entity, EX.founded, Literal(rng.choice(pools.years))))
    for value in rng.sample(pools.mottos, mottos):
        graph.add(Triple(entity, EX.motto, Literal(value)))
    for value in rng.sample(pools.aliases, aliases):
        graph.add(Triple(entity, EX.alias, Literal(value)))
    for value in rng.sample(_TAGS, tags):
        graph.add(Triple(entity, EX.tag, Literal(value)))
    if violation == "extra_predicate":
        graph.add(Triple(entity, EX.undeclared, Literal("surprise")))


def generate_kb_workload(
    num_entities: int = 400,
    num_hubs: int = 8,
    invalid_fraction: float = 0.15,
    hub_invalid_fraction: float = 0.25,
    notes_per_hub: int = 3,
    seed: int = 0,
    store: str = "dict",
) -> KBWorkload:
    """Generate a hub-heavy KB graph with a known share of violations.

    Entity violations stay local (a facet breach, a missing or undeclared
    predicate); hub violations are either an undeclared predicate or a link
    to a non-conforming entity, which the closed ``<Hub>`` shape cannot
    absorb.  Hub out-degrees follow a power law: hub *i* links to roughly
    ``num_entities / (i + 1)`` entities, so the first hubs dominate the
    reference load the way category hubs do in real knowledge bases.
    """
    if not 0 <= invalid_fraction <= 1:
        raise ValueError("invalid_fraction must be between 0 and 1")
    if not 0 <= hub_invalid_fraction <= 1:
        raise ValueError("hub_invalid_fraction must be between 0 and 1")
    if num_entities < 1 or num_hubs < 0:
        raise ValueError("need at least one entity and a non-negative hub count")
    rng = random.Random(seed)
    pools = _ValuePools(rng)
    graph = _make_graph(store)
    graph.namespaces.bind("", EX.base)
    workload = KBWorkload(graph=graph, schema=kb_schema())

    num_invalid = round(num_entities * invalid_fraction)
    invalid_indices = (set(rng.sample(range(num_entities), num_invalid))
                       if num_invalid else set())
    with graph.batch():
        for index in range(num_entities):
            entity = EX[f"entity{index}"]
            template = _ENTITY_TEMPLATES[index % len(_ENTITY_TEMPLATES)]
            violation: Optional[str] = None
            if index in invalid_indices:
                violation = _ENTITY_VIOLATIONS[index % len(_ENTITY_VIOLATIONS)]
            _emit_entity(graph, rng, pools, entity, template, violation)
            if violation is None:
                workload.valid_entities.append(entity)
            else:
                workload.invalid_entities[entity] = violation

        valid = workload.valid_entities
        num_bad_hubs = round(num_hubs * hub_invalid_fraction)
        bad_hub_indices = (set(rng.sample(range(num_hubs), num_bad_hubs))
                           if num_bad_hubs else set())
        note_counter = 0
        for index in range(num_hubs):
            hub = EX[f"hub{index}"]
            graph.add(Triple(hub, EX.label, Literal(f"Hub {_WORDS[index % len(_WORDS)]}")))
            # truncated power law: hub i wants ~num_entities/(i+1) links but
            # tops out at 40.  Every consumed reference arc grows the And
            # derivative's alternative set, so an uncapped category hub costs
            # quadratic engine time and would swamp both benchmark arms with
            # work the signature cache (soundly) refuses to dedupe.
            degree = max(3, min(len(valid), 40, num_entities // (index + 1)))
            targets = rng.sample(valid, min(degree, len(valid)))
            violation = None
            if index in bad_hub_indices:
                if index % 2 and workload.invalid_entities:
                    violation = "links_invalid_entity"
                    targets[0] = sorted(workload.invalid_entities,
                                        key=lambda term: term.value)[index % len(workload.invalid_entities)]
                else:
                    violation = "extra_predicate"
                    graph.add(Triple(hub, EX.undeclared, Literal("surprise")))
            for target in targets:
                graph.add(Triple(hub, EX.links, target))
            # empty-neighbourhood IRIs conform to the nullable <Note> shape,
            # and the prefilter decides them without engine help.
            for _ in range(notes_per_hub):
                graph.add(Triple(hub, EX.seeAlso, EX[f"note{note_counter}"]))
                note_counter += 1
            if violation is None:
                workload.valid_hubs.append(hub)
            else:
                workload.invalid_hubs[hub] = violation
    return workload
