"""FOAF person workloads: the paper's running example, at configurable scale.

The generators in this module produce graphs shaped like Example 2 of the
paper (people with ``foaf:age``, ``foaf:name`` and ``foaf:knows`` arcs) plus
controlled violations, so tests know exactly which nodes must conform and
benchmarks can grow the data without changing its structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rdf.columnar import ColumnarGraph
from ..rdf.errors import GraphError
from ..rdf.graph import Graph, TripleStore
from ..rdf.namespaces import EX, FOAF, XSD
from ..rdf.terms import IRI, Literal, Triple
from ..shex.schema import Schema
from ..shex.shexc import parse_shexc

__all__ = [
    "PAPER_EXAMPLE_TURTLE",
    "PERSON_SCHEMA_SHEXC",
    "paper_example_graph",
    "person_schema",
    "PersonWorkload",
    "generate_person_workload",
    "generate_community_workload",
    "knows_chain_graph",
    "knows_cycle_graph",
    "knows_tree_graph",
]

#: the exact data of Example 2, in Turtle.
PAPER_EXAMPLE_TURTLE = """\
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix :     <http://example.org/> .

:john foaf:age 23 ;
      foaf:name "John" ;
      foaf:knows :bob .
:bob  foaf:age 34 ;
      foaf:name "Bob", "Robert" .
:mary foaf:age 50, 65 .
"""

#: the Person schema of Example 1, in ShExC.
PERSON_SCHEMA_SHEXC = """\
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>

<Person> {
  foaf:age   xsd:integer ,
  foaf:name  xsd:string + ,
  foaf:knows @<Person> *
}
"""


def _make_graph(store: str) -> TripleStore:
    """Create an empty graph with the requested storage backend."""
    if store == "dict":
        return Graph()
    if store == "columnar":
        return ColumnarGraph()
    raise GraphError(f"unknown store {store!r}: expected 'dict' or 'columnar'")


def paper_example_graph() -> Graph:
    """Return the graph of Example 2 (``:john``, ``:bob``, ``:mary``)."""
    return Graph.parse(PAPER_EXAMPLE_TURTLE)


def person_schema() -> Schema:
    """Return the Person schema of Example 1."""
    return parse_shexc(PERSON_SCHEMA_SHEXC)


_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dave", "Eve", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
    "Trent", "Victor", "Walter", "Yolanda",
]


@dataclass
class PersonWorkload:
    """A generated person graph together with its ground truth."""

    graph: TripleStore
    schema: Schema
    #: nodes that must conform to the Person shape.
    valid_nodes: List[IRI] = field(default_factory=list)
    #: nodes that must not conform, with the reason they were broken.
    invalid_nodes: Dict[IRI, str] = field(default_factory=dict)

    @property
    def all_nodes(self) -> List[IRI]:
        """Every generated person node (valid and invalid)."""
        return sorted(set(self.valid_nodes) | set(self.invalid_nodes),
                      key=lambda term: term.value)


def generate_person_workload(
    num_people: int = 50,
    invalid_fraction: float = 0.2,
    knows_probability: float = 0.3,
    max_extra_names: int = 2,
    seed: int = 0,
    store: str = "dict",
) -> PersonWorkload:
    """Generate a person graph with a known share of violating nodes.

    Violations are drawn from the failure modes the paper's Person shape can
    exhibit: duplicate ``foaf:age`` arcs (Example 2's ``:mary``), a missing
    ``foaf:name``, a non-integer age, an undeclared predicate (closed-shape
    violation) or a ``foaf:knows`` arc pointing at a literal.
    """
    if not 0 <= invalid_fraction <= 1:
        raise ValueError("invalid_fraction must be between 0 and 1")
    rng = random.Random(seed)
    graph = _make_graph(store)
    graph.namespaces.bind("", EX.base)
    graph.namespaces.bind("foaf", FOAF.base)
    people = [EX[f"person{i}"] for i in range(num_people)]
    num_invalid = round(num_people * invalid_fraction)
    invalid_indices = set(rng.sample(range(num_people), num_invalid)) if num_invalid else set()

    workload = PersonWorkload(graph=graph, schema=person_schema())
    # the violation applied to the node that breaks transitively-referenced
    # people must not be "knows a bad person": references only require the
    # *referenced* node to conform, so violations are local by construction.
    violations = ["duplicate_age", "missing_name", "bad_age_type",
                  "extra_predicate", "knows_literal"]

    # one batch for the whole build: journal churn coalesces into one
    # record per subject instead of one per triple.
    with graph.batch():
        for index, person in enumerate(people):
            age = rng.randint(18, 90)
            names = 1 + rng.randint(0, max_extra_names)
            violation: Optional[str] = None
            if index in invalid_indices:
                violation = violations[index % len(violations)]

            if violation == "bad_age_type":
                graph.add(Triple(person, FOAF.age, Literal(str(age), datatype=XSD.string)))
            else:
                graph.add(Triple(person, FOAF.age, Literal(age)))
                if violation == "duplicate_age":
                    graph.add(Triple(person, FOAF.age, Literal(age + 1)))

            if violation != "missing_name":
                for name_index in range(names):
                    name = f"{rng.choice(_FIRST_NAMES)} {chr(65 + name_index)}."
                    graph.add(Triple(person, FOAF.name, Literal(name)))

            if violation == "extra_predicate":
                graph.add(Triple(person, EX.nickname, Literal("Zed")))
            if violation == "knows_literal":
                graph.add(Triple(person, FOAF.knows, Literal("not a person")))

            if violation is None:
                workload.valid_nodes.append(person)
            else:
                workload.invalid_nodes[person] = violation

        # sprinkle foaf:knows arcs between *valid* people so that references
        # do not accidentally invalidate otherwise-valid nodes.
        valid = workload.valid_nodes
        for person in valid:
            for other in valid:
                if other is not person and rng.random() < knows_probability:
                    graph.add(Triple(person, FOAF.knows, other))
    return workload


#: the violation kinds shared by the workload generators (see
#: :func:`generate_person_workload` for what each one breaks).
_VIOLATIONS = ["duplicate_age", "missing_name", "bad_age_type",
               "extra_predicate", "knows_literal"]


def _emit_person(graph: Graph, rng: random.Random, person: IRI,
                 violation: Optional[str], max_extra_names: int) -> None:
    """Emit one person's age/name triples (and any local violation)."""
    age = rng.randint(18, 90)
    names = 1 + rng.randint(0, max_extra_names)
    if violation == "bad_age_type":
        graph.add(Triple(person, FOAF.age, Literal(str(age), datatype=XSD.string)))
    else:
        graph.add(Triple(person, FOAF.age, Literal(age)))
        if violation == "duplicate_age":
            graph.add(Triple(person, FOAF.age, Literal(age + 1)))
    if violation != "missing_name":
        for name_index in range(names):
            name = f"{rng.choice(_FIRST_NAMES)} {chr(65 + name_index)}."
            graph.add(Triple(person, FOAF.name, Literal(name)))
    if violation == "extra_predicate":
        graph.add(Triple(person, EX.nickname, Literal("Zed")))
    if violation == "knows_literal":
        graph.add(Triple(person, FOAF.knows, Literal("not a person")))


def generate_community_workload(
    num_communities: int = 16,
    people_per_community: int = 12,
    invalid_fraction: float = 0.2,
    knows_chords: int = 2,
    max_extra_names: int = 2,
    seed: int = 0,
    store: str = "dict",
) -> PersonWorkload:
    """Many independent communities: the multi-component scaling workload.

    ``foaf:knows`` arcs never cross community boundaries, so the node
    reference graph decomposes into one strongly-connected component per
    community (the valid members form a ring with ``knows_chords`` extra
    intra-ring edges each) plus upstream singletons (invalid members point
    *into* their ring but nothing points back at them).  This is the workload
    parallel bulk validation is designed for: components are independent, so
    the condensation's first level contains one unit of real work per
    community.  Ground truth stays local by construction, exactly as in
    :func:`generate_person_workload`.
    """
    if not 0 <= invalid_fraction <= 1:
        raise ValueError("invalid_fraction must be between 0 and 1")
    if num_communities < 1 or people_per_community < 1:
        raise ValueError("need at least one community with at least one person")
    rng = random.Random(seed)
    graph = _make_graph(store)
    graph.namespaces.bind("", EX.base)
    graph.namespaces.bind("foaf", FOAF.base)
    workload = PersonWorkload(graph=graph, schema=person_schema())

    with graph.batch():
        for community in range(num_communities):
            members = [EX[f"community{community}_person{index}"]
                       for index in range(people_per_community)]
            num_invalid = round(people_per_community * invalid_fraction)
            invalid_indices = (set(rng.sample(range(people_per_community), num_invalid))
                               if num_invalid else set())
            valid_members = []
            for index, person in enumerate(members):
                violation: Optional[str] = None
                if index in invalid_indices:
                    violation = _VIOLATIONS[(community + index) % len(_VIOLATIONS)]
                _emit_person(graph, rng, person, violation, max_extra_names)
                if violation is None:
                    valid_members.append(person)
                    workload.valid_nodes.append(person)
                else:
                    workload.invalid_nodes[person] = violation
            # the ring ties the community's valid members into one SCC …
            if len(valid_members) > 1:
                for index, person in enumerate(valid_members):
                    follower = valid_members[(index + 1) % len(valid_members)]
                    graph.add(Triple(person, FOAF.knows, follower))
                # … and the chords thicken it without leaving the community.
                for person in valid_members:
                    for _ in range(knows_chords):
                        other = rng.choice(valid_members)
                        if other is not person:
                            graph.add(Triple(person, FOAF.knows, other))
            # invalid members reference the ring: upstream singleton components.
            if valid_members:
                for person in members:
                    if person in workload.invalid_nodes \
                            and workload.invalid_nodes[person] != "knows_literal":
                        graph.add(Triple(person, FOAF.knows, valid_members[0]))
    return workload


def knows_chain_graph(depth: int) -> Tuple[Graph, IRI]:
    """A chain ``p0 knows p1 knows … knows p_depth`` of valid people.

    Returns the graph and the head of the chain; validating the head forces
    the engines to recurse through the whole chain (benchmark B5).
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    graph = Graph()
    people = [EX[f"chain{i}"] for i in range(depth + 1)]
    with graph.batch():
        for index, person in enumerate(people):
            graph.add(Triple(person, FOAF.age, Literal(20 + index)))
            graph.add(Triple(person, FOAF.name, Literal(f"Person {index}")))
            if index + 1 < len(people):
                graph.add(Triple(person, FOAF.knows, people[index + 1]))
    return graph, people[0]


def knows_cycle_graph(length: int) -> Tuple[Graph, IRI]:
    """A cycle of ``length`` valid people, each knowing the next.

    Exercises the coinductive handling of recursive schemas: every node on
    the cycle conforms, and naive recursion would not terminate.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    graph = Graph()
    people = [EX[f"cycle{i}"] for i in range(length)]
    with graph.batch():
        for index, person in enumerate(people):
            graph.add(Triple(person, FOAF.age, Literal(30 + index)))
            graph.add(Triple(person, FOAF.name, Literal(f"Cycle {index}")))
            graph.add(Triple(person, FOAF.knows, people[(index + 1) % length]))
    return graph, people[0]


def knows_tree_graph(depth: int, fanout: int = 2) -> Tuple[Graph, IRI]:
    """A complete ``fanout``-ary tree of valid people of the given depth."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    graph = Graph()
    counter = 0

    def build(level: int) -> IRI:
        nonlocal counter
        node = EX[f"tree{counter}"]
        counter += 1
        graph.add(Triple(node, FOAF.age, Literal(20 + level)))
        graph.add(Triple(node, FOAF.name, Literal(f"Node level {level}")))
        if level < depth:
            for _ in range(fanout):
                child = build(level + 1)
                graph.add(Triple(node, FOAF.knows, child))
        return node

    with graph.batch():
        root = build(0)
    return graph, root
