"""Linked-data-portal workload: a multi-shape, cross-referencing schema.

The paper motivates Shape Expressions with the validation of linked data
portals (Section 1 and reference [16]).  This module models a small DCAT-like
portal: datasets that reference distributions and a publisher, with literal
constraints on titles, dates and byte sizes.  It produces graphs whose ground
truth (which records conform) is known by construction, and is used by the
``linked_data_portal`` example and by integration tests/benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..rdf.graph import Graph
from ..rdf.namespaces import DCTERMS, EX, FOAF, Namespace, XSD
from ..rdf.terms import IRI, Literal, Triple
from ..shex.schema import Schema
from ..shex.shexc import parse_shexc

__all__ = [
    "DCAT",
    "PORTAL_SCHEMA_SHEXC",
    "portal_schema",
    "PortalWorkload",
    "generate_portal_workload",
]

#: minimal DCAT namespace used by the workload.
DCAT = Namespace("http://www.w3.org/ns/dcat#")

#: the portal schema: three mutually referencing shapes.
PORTAL_SCHEMA_SHEXC = """\
PREFIX dcat:    <http://www.w3.org/ns/dcat#>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX foaf:    <http://xmlns.com/foaf/0.1/>
PREFIX xsd:     <http://www.w3.org/2001/XMLSchema#>

<Dataset> {
  dcterms:title       xsd:string ,
  dcterms:issued      xsd:date ? ,
  dcterms:publisher   @<Publisher> ,
  dcat:theme          IRI * ,
  dcat:distribution   @<Distribution> +
}

<Distribution> {
  dcterms:title       xsd:string ? ,
  dcat:downloadURL    IRI ,
  dcat:mediaType      xsd:string ,
  dcat:byteSize       xsd:integer MININCLUSIVE 0 ?
}

<Publisher> {
  foaf:name           xsd:string ,
  foaf:homepage       IRI ?
}
"""


def portal_schema() -> Schema:
    """Return the portal schema (Dataset / Distribution / Publisher)."""
    return parse_shexc(PORTAL_SCHEMA_SHEXC)


@dataclass
class PortalWorkload:
    """A generated portal graph together with its ground truth."""

    graph: Graph
    schema: Schema
    valid_datasets: List[IRI] = field(default_factory=list)
    invalid_datasets: Dict[IRI, str] = field(default_factory=dict)
    publishers: List[IRI] = field(default_factory=list)
    distributions: List[IRI] = field(default_factory=list)

    @property
    def datasets(self) -> List[IRI]:
        """Every generated dataset node."""
        return sorted(set(self.valid_datasets) | set(self.invalid_datasets),
                      key=lambda term: term.value)


_MEDIA_TYPES = ["text/csv", "application/json", "application/rdf+xml", "text/turtle"]
_THEMES = ["economy", "education", "energy", "environment", "health", "transport"]


def generate_portal_workload(
    num_datasets: int = 30,
    num_publishers: int = 5,
    invalid_fraction: float = 0.25,
    max_distributions: int = 3,
    seed: int = 0,
) -> PortalWorkload:
    """Generate a portal graph with a controlled share of broken datasets.

    Violations cover the interesting failure modes of the schema: a missing
    publisher, a distribution without a ``dcat:downloadURL``, a negative
    ``dcat:byteSize`` (facet violation), a non-IRI theme and a dataset with
    no distribution at all.
    """
    if not 0 <= invalid_fraction <= 1:
        raise ValueError("invalid_fraction must be between 0 and 1")
    rng = random.Random(seed)
    graph = Graph()
    graph.namespaces.bind("dcat", DCAT.base)
    graph.namespaces.bind("dcterms", DCTERMS.base)
    graph.namespaces.bind("foaf", FOAF.base)
    graph.namespaces.bind("ex", EX.base)

    workload = PortalWorkload(graph=graph, schema=portal_schema())

    num_invalid = round(num_datasets * invalid_fraction)
    invalid_indices = set(rng.sample(range(num_datasets), num_invalid)) if num_invalid else set()
    violations = ["missing_publisher", "broken_distribution", "negative_byte_size",
                  "literal_theme", "no_distribution"]
    distribution_counter = 0

    # one batch for the whole build (see Graph.batch): one journal record
    # per subject instead of per-triple journalling.
    with graph.batch():
        publishers = []
        for index in range(num_publishers):
            publisher = EX[f"publisher{index}"]
            graph.add(Triple(publisher, FOAF.name, Literal(f"Agency {index}")))
            if index % 2 == 0:
                graph.add(Triple(publisher, FOAF.homepage, EX[f"homepage{index}"]))
            publishers.append(publisher)
        workload.publishers = publishers

        for index in range(num_datasets):
            dataset = EX[f"dataset{index}"]
            violation = violations[index % len(violations)] if index in invalid_indices else None
            graph.add(Triple(dataset, DCTERMS.title, Literal(f"Dataset {index}")))
            if rng.random() < 0.7:
                graph.add(Triple(dataset, DCTERMS.issued,
                                 Literal(f"20{10 + index % 15:02d}-01-0{1 + index % 9}",
                                         datatype=XSD.date)))
            if violation != "missing_publisher":
                graph.add(Triple(dataset, DCTERMS.publisher, rng.choice(publishers)))
            num_themes = rng.randint(0, 2)
            if violation == "literal_theme":
                num_themes = max(1, num_themes)
            for _ in range(num_themes):
                if violation == "literal_theme":
                    graph.add(Triple(dataset, DCAT.theme, Literal(rng.choice(_THEMES))))
                else:
                    graph.add(Triple(dataset, DCAT.theme, EX["theme/" + rng.choice(_THEMES)]))

            if violation != "no_distribution":
                for _ in range(rng.randint(1, max_distributions)):
                    distribution = EX[f"distribution{distribution_counter}"]
                    distribution_counter += 1
                    workload.distributions.append(distribution)
                    graph.add(Triple(dataset, DCAT.distribution, distribution))
                    if rng.random() < 0.5:
                        graph.add(Triple(distribution, DCTERMS.title,
                                         Literal(f"Download {distribution_counter}")))
                    broken = violation == "broken_distribution"
                    if not broken:
                        graph.add(Triple(distribution, DCAT.downloadURL,
                                         EX[f"files/file{distribution_counter}.csv"]))
                    graph.add(Triple(distribution, DCAT.mediaType,
                                     Literal(rng.choice(_MEDIA_TYPES))))
                    size = rng.randint(100, 10_000_000)
                    if violation == "negative_byte_size":
                        size = -size
                    if rng.random() < 0.8 or violation == "negative_byte_size":
                        graph.add(Triple(distribution, DCAT.byteSize, Literal(size)))
                    if broken or violation == "negative_byte_size":
                        # only one distribution needed to break the dataset
                        break

            if violation is None:
                workload.valid_datasets.append(dataset)
            else:
                workload.invalid_datasets[dataset] = violation
    return workload
