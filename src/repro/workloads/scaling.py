"""Scaling workloads: the parameterised neighbourhoods behind the benchmarks.

Every benchmark in ``benchmarks/`` measures both engines on neighbourhoods
produced here.  Each generator returns a :class:`NeighbourhoodCase` carrying
the expression, the node, the triples and the expected verdict, so that the
benchmark can assert correctness before timing anything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List

from ..rdf.namespaces import EX, XSD
from ..rdf.terms import IRI, Literal, Triple
from ..shex.expressions import (
    ShapeExpr,
    arc,
    interleave,
    interleave_all,
    plus,
    repeat,
    star,
)
from ..shex.node_constraints import DatatypeConstraint, value_set

__all__ = [
    "NeighbourhoodCase",
    "star_case",
    "paper_interleave_case",
    "interleave_width_case",
    "balanced_alternation_case",
    "cardinality_case",
    "mixed_portal_case",
    "shuffled",
]


@dataclass
class NeighbourhoodCase:
    """One matching problem: expression + neighbourhood + expected verdict."""

    name: str
    expression: ShapeExpr
    node: IRI
    triples: FrozenSet[Triple]
    expected: bool
    #: free-form parameters, echoed in benchmark output tables.
    parameters: dict

    def __post_init__(self):
        self.triples = frozenset(self.triples)

    @property
    def size(self) -> int:
        """Number of triples in the neighbourhood."""
        return len(self.triples)


_NODE = EX.subject


def star_case(arcs: int, matching: bool = True) -> NeighbourhoodCase:
    """``(b → {1..k})*`` against ``arcs`` distinct arcs; a mismatch is injected if asked.

    The value set grows with the neighbourhood (triples form a set, so each
    arc needs a distinct object).  This is the friendliest possible workload
    for both engines (no forced interleave split), used as the baseline curve
    of benchmark B1.
    """
    value_bound = max(5, arcs)
    values = value_set(*range(1, value_bound + 1))
    expression = star(arc(EX.b, values))
    triples = {
        Triple(_NODE, EX.b, Literal(index + 1)) for index in range(arcs)
    }
    if not matching and arcs:
        triples = set(triples)
        triples.pop()
        triples.add(Triple(_NODE, EX.b, Literal("out of range")))
    return NeighbourhoodCase(
        name=f"star-{arcs}", expression=expression, node=_NODE,
        triples=frozenset(triples), expected=matching or arcs == 0,
        parameters={"arcs": arcs, "matching": matching},
    )


def paper_interleave_case(extra_b_arcs: int, matching: bool = True) -> NeighbourhoodCase:
    """The paper's running example ``a→1 ‖ (b→V)*`` scaled up.

    RDF neighbourhoods are *sets* of triples, so growing the number of ``b``
    arcs requires growing their value set as well: the expression becomes
    ``a→{1} ‖ (b→{1..k})*`` with ``k = max(2, extra_b_arcs)``, which for
    ``extra_b_arcs = 2`` is exactly the paper's ``a→1 ‖ (b→{1,2})*``.
    With ``matching=False`` a second ``a`` arc is added, which is the
    rejection scenario of Example 12.
    """
    value_bound = max(2, extra_b_arcs)
    expression = interleave(
        arc(EX.a, value_set(1)),
        star(arc(EX.b, value_set(*range(1, value_bound + 1)))),
    )
    triples = {Triple(_NODE, EX.a, Literal(1))}
    for index in range(extra_b_arcs):
        triples.add(Triple(_NODE, EX.b, Literal(index + 1)))
    if not matching:
        triples.add(Triple(_NODE, EX.a, Literal(2)))
    return NeighbourhoodCase(
        name=f"paper-interleave-{extra_b_arcs}", expression=expression, node=_NODE,
        triples=frozenset(triples), expected=matching,
        parameters={"extra_b_arcs": extra_b_arcs, "matching": matching},
    )


def interleave_width_case(width: int, arcs_per_branch: int = 1,
                          matching: bool = True) -> NeighbourhoodCase:
    """``p1→v ‖ p2→v ‖ … ‖ pk→v`` with one (or more) arc per predicate.

    Widening the interleave is what blows up the backtracking matcher: every
    ``‖`` forces a decomposition of the remaining neighbourhood (benchmark B3).
    """
    branches = []
    triples = set()
    for index in range(width):
        predicate = EX[f"p{index}"]
        values = value_set(*range(1, arcs_per_branch + 1))
        if arcs_per_branch == 1:
            branches.append(arc(predicate, values))
        else:
            branches.append(repeat(arc(predicate, values), arcs_per_branch, arcs_per_branch))
        for value in range(1, arcs_per_branch + 1):
            triples.add(Triple(_NODE, predicate, Literal(value)))
    expression = interleave_all(*branches)
    if not matching and triples:
        triples.add(Triple(_NODE, EX.unexpected, Literal(0)))
    return NeighbourhoodCase(
        name=f"interleave-{width}x{arcs_per_branch}", expression=expression, node=_NODE,
        triples=frozenset(triples), expected=matching,
        parameters={"width": width, "arcs_per_branch": arcs_per_branch,
                    "matching": matching},
    )


def balanced_alternation_case(pairs: int, matching: bool = True) -> NeighbourhoodCase:
    """Example 10's expression ``(a→V | b→V)*`` with ``pairs`` a/b arc pairs.

    The derivative of this expression grows as arcs are consumed (the paper
    points this out explicitly), so benchmark B2 tracks the peak expression
    size along with the running time.  As in :func:`paper_interleave_case`
    the value set grows with the neighbourhood because triples form a set;
    ``pairs = 1`` corresponds to the paper's ``(a→{1,2} | b→{1,2})*``.
    """
    value_bound = max(2, pairs)
    values = value_set(*range(1, value_bound + 1))
    expression = star(arc(EX.a, values) | arc(EX.b, values))
    triples = set()
    for index in range(pairs):
        triples.add(Triple(_NODE, EX.a, Literal(index + 1)))
        triples.add(Triple(_NODE, EX.b, Literal(index + 1)))
    if not matching:
        triples.add(Triple(_NODE, EX.c, Literal(1)))
    return NeighbourhoodCase(
        name=f"balanced-{pairs}", expression=expression, node=_NODE,
        triples=frozenset(triples), expected=matching,
        parameters={"pairs": pairs, "matching": matching},
    )


def cardinality_case(minimum: int, maximum: int, arcs: int) -> NeighbourhoodCase:
    """``(p→V){m,n}`` against ``arcs`` arcs (benchmark B4).

    The expected verdict is ``m <= arcs <= n``; the repeat operator expands
    into nested interleaves/alternatives exactly as defined in Section 4, so
    large ranges stress the expression-size handling of both engines.
    """
    values = value_set(*range(arcs + 2)) if arcs else value_set(0, 1)
    expression = repeat(arc(EX.p, values), minimum, maximum)
    triples = {Triple(_NODE, EX.p, Literal(index)) for index in range(arcs)}
    return NeighbourhoodCase(
        name=f"cardinality-{minimum}-{maximum}-{arcs}", expression=expression,
        node=_NODE, triples=frozenset(triples),
        expected=minimum <= arcs <= maximum,
        parameters={"min": minimum, "max": maximum, "arcs": arcs},
    )


def mixed_portal_case(properties: int, multivalued_every: int = 3,
                      matching: bool = True) -> NeighbourhoodCase:
    """A linked-data-portal record: many single-valued and some multi-valued arcs.

    Mimics the dataset descriptions in the portals the paper cites
    (one label, one publisher, several themes, several distributions, …).
    """
    branches: List[ShapeExpr] = []
    triples = set()
    for index in range(properties):
        predicate = EX[f"prop{index}"]
        constraint = DatatypeConstraint(XSD.string)
        if index % multivalued_every == 0:
            branches.append(plus(arc(predicate, constraint)))
            triples.add(Triple(_NODE, predicate, Literal(f"value {index}a")))
            triples.add(Triple(_NODE, predicate, Literal(f"value {index}b")))
        else:
            branches.append(arc(predicate, constraint))
            triples.add(Triple(_NODE, predicate, Literal(f"value {index}")))
    expression = interleave_all(*branches)
    if not matching and triples:
        triples.add(Triple(_NODE, EX[f"prop{0}"], Literal(1)))  # non-string value
    return NeighbourhoodCase(
        name=f"portal-{properties}", expression=expression, node=_NODE,
        triples=frozenset(triples), expected=matching,
        parameters={"properties": properties, "matching": matching},
    )


def shuffled(case: NeighbourhoodCase, seed: int = 0) -> List[Triple]:
    """Return the case's triples in a deterministic shuffled order.

    Used by the triple-ordering ablation: the derivative algorithm is
    correct for any consumption order, but the order affects intermediate
    expression sizes.
    """
    triples = sorted(case.triples, key=Triple.sort_key)
    rng = random.Random(seed)
    rng.shuffle(triples)
    return triples
