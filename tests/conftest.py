"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.rdf import EX, Graph
from repro.shex import BacktrackingEngine, DerivativeEngine, Schema
from repro.workloads import paper_example_graph, person_schema


@pytest.fixture
def example_graph() -> Graph:
    """The graph of Example 2 (:john, :bob, :mary)."""
    return paper_example_graph()


@pytest.fixture
def person_shape_schema() -> Schema:
    """The Person schema of Example 1."""
    return person_schema()


@pytest.fixture
def john():
    return EX.john


@pytest.fixture
def bob():
    return EX.bob


@pytest.fixture
def mary():
    return EX.mary


@pytest.fixture(params=["derivatives", "backtracking"])
def engine_name(request) -> str:
    """Parametrised over the two complete matching engines."""
    return request.param


@pytest.fixture
def engine(engine_name):
    """An engine instance for each complete matching engine."""
    if engine_name == "derivatives":
        return DerivativeEngine()
    return BacktrackingEngine()
