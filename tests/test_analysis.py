"""Tests for the static analysis of expressions and schemas."""


from repro.rdf import EX, FOAF
from repro.shex import (
    EMPTY,
    EPSILON,
    Arc,
    PredicateSet,
    Schema,
    ShapeLabel,
    ShapeRef,
    arc,
    interleave,
    interleave_all,
    optional,
    plus,
    repeat,
    star,
    value_set,
)
from repro.shex.analysis import (
    analyze_schema,
    cardinality_bounds,
    is_deterministic,
    is_empty,
    is_single_occurrence,
    is_universal,
    predicate_occurrences,
    recursive_labels,
    schema_dependency_graph,
    stratify_schema,
)
from repro.workloads import person_schema, portal_schema


def reference(predicate, label):
    return Arc(PredicateSet.single(predicate), ShapeRef(ShapeLabel(label)))


class TestEmptiness:
    def test_empty_expression(self):
        assert is_empty(EMPTY)
        assert not is_empty(EPSILON)
        assert not is_empty(arc(EX.p))

    def test_interleave_with_empty_is_empty(self):
        assert is_empty(interleave(arc(EX.p), EMPTY, simplify=False))

    def test_alternative_is_empty_only_if_both_are(self):
        from repro.shex.expressions import Or

        assert not is_empty(Or(EMPTY, arc(EX.p)))
        assert is_empty(Or(EMPTY, EMPTY))

    def test_star_is_never_empty(self):
        assert not is_empty(star(arc(EX.p)))

    def test_universal_accepts_only_empty_neighbourhood(self):
        assert is_universal(EPSILON)
        assert not is_universal(arc(EX.p))
        assert not is_universal(optional(arc(EX.p)))
        assert is_universal(star(EPSILON))
        from repro.shex.expressions import Or

        assert is_universal(Or(EMPTY, EPSILON))


class TestSingleOccurrence:
    def test_person_schema_is_single_occurrence(self):
        for _, expr in person_schema().items():
            assert is_single_occurrence(expr)

    def test_duplicate_predicate_with_different_constraints(self):
        expr = interleave(arc(EX.p, value_set(1)), arc(EX.p, value_set(2)))
        assert not is_single_occurrence(expr)

    def test_plus_expansion_still_counts_once(self):
        # E+ duplicates the arc syntactically but with an identical constraint
        assert is_single_occurrence(plus(arc(EX.p, value_set(1))))

    def test_wildcard_predicates_are_not_single_occurrence(self):
        expr = Arc(PredicateSet(any_predicate=True), value_set(1))
        assert not is_single_occurrence(expr)

    def test_occurrence_counter(self):
        expr = interleave_all(arc(EX.a, value_set(1)), arc(EX.b, value_set(1)),
                              arc(EX.a, value_set(2)))
        occurrences = predicate_occurrences(expr)
        assert occurrences[EX.a] == 2
        assert occurrences[EX.b] == 1


class TestDeterminism:
    def test_distinct_predicates_are_deterministic(self):
        expr = interleave(arc(EX.a, value_set(1)), arc(EX.b, value_set(1)))
        assert is_deterministic(expr)

    def test_same_predicate_different_constraints_is_not(self):
        expr = interleave(arc(EX.a, value_set(1)), arc(EX.a, value_set(2)))
        assert not is_deterministic(expr)

    def test_wildcard_overlaps_everything(self):
        expr = interleave(arc(EX.a, value_set(1)),
                          Arc(PredicateSet(any_predicate=True), value_set(1)))
        assert not is_deterministic(expr)

    def test_stem_overlap(self):
        stem_arc = Arc(PredicateSet(stem="http://example.org/"), value_set(1))
        expr = interleave(arc(EX.a, value_set(2)), stem_arc)
        assert not is_deterministic(expr)
        foreign = Arc(PredicateSet(stem="http://other.org/"), value_set(1))
        assert is_deterministic(interleave(arc(EX.a, value_set(2)), foreign))

    def test_identical_arcs_do_not_break_determinism(self):
        assert is_deterministic(plus(arc(EX.a, value_set(1))))


class TestCardinalityBounds:
    def test_single_arc(self):
        bounds = cardinality_bounds(arc(EX.p, value_set(1)))
        assert (bounds[EX.p].minimum, bounds[EX.p].maximum) == (1, 1)

    def test_star_plus_optional(self):
        expr = interleave_all(
            star(arc(EX.a)), plus(arc(EX.b)), optional(arc(EX.c)),
        )
        bounds = cardinality_bounds(expr)
        assert (bounds[EX.a].minimum, bounds[EX.a].maximum) == (0, None)
        assert (bounds[EX.b].minimum, bounds[EX.b].maximum) == (1, None)
        assert (bounds[EX.c].minimum, bounds[EX.c].maximum) == (0, 1)

    def test_repeat_range(self):
        bounds = cardinality_bounds(repeat(arc(EX.p, value_set(1, 2, 3, 4)), 2, 4))
        assert (bounds[EX.p].minimum, bounds[EX.p].maximum) == (2, 4)

    def test_alternative_takes_min_and_max(self):
        expr = plus(arc(EX.p)) | arc(EX.p)
        bounds = cardinality_bounds(expr)
        assert (bounds[EX.p].minimum, bounds[EX.p].maximum) == (1, None)

    def test_person_schema_bounds(self):
        bounds = cardinality_bounds(person_schema().expression("Person"))
        assert (bounds[FOAF.age].minimum, bounds[FOAF.age].maximum) == (1, 1)
        assert (bounds[FOAF.name].minimum, bounds[FOAF.name].maximum) == (1, None)
        assert (bounds[FOAF.knows].minimum, bounds[FOAF.knows].maximum) == (0, None)

    def test_render(self):
        bounds = cardinality_bounds(plus(arc(EX.p)))
        assert bounds[EX.p].render() == "{1,∞}"


class TestSchemaStructure:
    def test_dependency_graph_of_portal_schema(self):
        graph = schema_dependency_graph(portal_schema())
        assert graph.has_edge(ShapeLabel("Dataset"), ShapeLabel("Publisher"))
        assert graph.has_edge(ShapeLabel("Dataset"), ShapeLabel("Distribution"))
        assert not graph.has_edge(ShapeLabel("Publisher"), ShapeLabel("Dataset"))

    def test_recursive_labels(self):
        assert recursive_labels(person_schema()) == {ShapeLabel("Person")}
        assert recursive_labels(portal_schema()) == frozenset()

    def test_mutual_recursion(self):
        schema = Schema({
            "A": reference(EX.toB, "B"),
            "B": reference(EX.toA, "A"),
            "C": arc(EX.leaf),
        })
        assert recursive_labels(schema) == {ShapeLabel("A"), ShapeLabel("B")}

    def test_stratification_orders_dependencies_first(self):
        strata = stratify_schema(portal_schema())
        flat = [label for stratum in strata for label in stratum]
        assert flat.index(ShapeLabel("Publisher")) < flat.index(ShapeLabel("Dataset"))
        assert flat.index(ShapeLabel("Distribution")) < flat.index(ShapeLabel("Dataset"))

    def test_stratification_groups_cycles_together(self):
        schema = Schema({
            "A": reference(EX.toB, "B"),
            "B": reference(EX.toA, "A"),
        })
        strata = stratify_schema(schema)
        assert len(strata) == 1
        assert set(strata[0]) == {ShapeLabel("A"), ShapeLabel("B")}


class TestSchemaReport:
    def test_person_schema_report(self):
        report = analyze_schema(person_schema())
        assert report.shape_count == 1
        assert report.recursive == {ShapeLabel("Person")}
        assert report.is_sorbe
        assert not report.empty_shapes
        assert "Person" in report.summary()

    def test_portal_schema_report(self):
        report = analyze_schema(portal_schema())
        assert report.shape_count == 3
        assert not report.recursive
        assert report.is_sorbe
        assert len(report.strata) == 3

    def test_non_sorbe_schema(self):
        schema = Schema.single(
            "S", interleave(arc(EX.p, value_set(1)), arc(EX.p, value_set(2))))
        report = analyze_schema(schema)
        assert not report.is_sorbe
        assert not report.deterministic[ShapeLabel("S")]
