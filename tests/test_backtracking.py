"""Tests for the backtracking matcher (the inference rules of Figure 1)."""

import pytest

from repro.rdf import EX, Literal, Triple, XSD
from repro.shex import (
    EMPTY,
    EPSILON,
    BacktrackingBudgetExceeded,
    BacktrackingEngine,
    arc,
    datatype,
    interleave,
    interleave_all,
    matches_backtracking,
    optional,
    plus,
    star,
    value_set,
)

NODE = EX.n
A1 = Triple(NODE, EX.a, Literal(1))
A2 = Triple(NODE, EX.a, Literal(2))
B1 = Triple(NODE, EX.b, Literal(1))
B2 = Triple(NODE, EX.b, Literal(2))


@pytest.fixture
def paper_expression():
    return interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))


class TestRules:
    def test_empty_rule(self):
        """rule Empty: ε ≃ {} and nothing else."""
        assert matches_backtracking(EPSILON, [])
        assert not matches_backtracking(EPSILON, [A1])

    def test_empty_expression_matches_nothing(self):
        assert not matches_backtracking(EMPTY, [])
        assert not matches_backtracking(EMPTY, [A1])

    def test_arc_rule(self):
        """rule Arc: vp→vo ≃ ⟨s,p,o⟩ when p ∈ vp and o ∈ vo."""
        expression = arc(EX.a, value_set(1))
        assert matches_backtracking(expression, [A1])
        assert not matches_backtracking(expression, [A2])      # o ∉ vo
        assert not matches_backtracking(expression, [B1])      # p ∉ vp
        assert not matches_backtracking(expression, [])        # needs one triple
        assert not matches_backtracking(expression, [A1, B1])  # exactly one triple

    def test_or_rules(self):
        expression = arc(EX.a, value_set(1)) | arc(EX.b, value_set(1))
        assert matches_backtracking(expression, [A1])
        assert matches_backtracking(expression, [B1])
        assert not matches_backtracking(expression, [A2])

    def test_and_rule_considers_decompositions(self):
        expression = interleave(arc(EX.a, value_set(1)), arc(EX.b, value_set(1)))
        assert matches_backtracking(expression, [A1, B1])
        assert matches_backtracking(expression, [B1, A1])
        assert not matches_backtracking(expression, [A1])
        assert not matches_backtracking(expression, [A1, B1, B2])

    def test_star_rules(self):
        expression = star(arc(EX.b, value_set(1, 2)))
        assert matches_backtracking(expression, [])
        assert matches_backtracking(expression, [B1])
        assert matches_backtracking(expression, [B1, B2])
        assert not matches_backtracking(expression, [A1])

    def test_example_8_trace_verdict(self, paper_expression):
        """The matching problem of Example 8 / Figure 2 succeeds."""
        assert matches_backtracking(paper_expression, [A1, B1, B2])

    def test_example_12_verdict(self, paper_expression):
        assert not matches_backtracking(paper_expression, [A1, A2, B1])

    def test_plus_and_optional(self):
        plus_expression = plus(arc(EX.b, value_set(1, 2)))
        assert not matches_backtracking(plus_expression, [])
        assert matches_backtracking(plus_expression, [B1])
        optional_expression = optional(arc(EX.a, value_set(1)))
        assert matches_backtracking(optional_expression, [])
        assert matches_backtracking(optional_expression, [A1])
        assert not matches_backtracking(optional_expression, [A2])

    def test_datatype_constraint(self):
        expression = plus(arc(EX.a, datatype(XSD.integer)))
        assert matches_backtracking(expression, [A1, A2])
        bad = Triple(NODE, EX.a, Literal("not a number"))
        assert not matches_backtracking(expression, [A1, bad])

    def test_unknown_expression_type_rejected(self):
        engine = BacktrackingEngine()
        with pytest.raises(TypeError):
            engine.match_neighbourhood("not an expression", frozenset())


class TestEngineBehaviour:
    def test_statistics_count_decompositions(self, paper_expression):
        engine = BacktrackingEngine()
        result = engine.match_neighbourhood(paper_expression, frozenset({A1, B1, B2}))
        assert result.matched
        assert result.stats.decompositions > 0
        assert result.stats.rule_applications > 0

    def test_rejection_explores_exponentially_more(self, paper_expression):
        engine = BacktrackingEngine()
        accepting = engine.match_neighbourhood(paper_expression, frozenset({A1, B1, B2}))
        rejecting_triples = frozenset({A1, A2, B1, B2,
                                       Triple(NODE, EX.b, Literal(3))})
        rejecting = engine.match_neighbourhood(paper_expression, rejecting_triples)
        assert not rejecting.matched
        assert rejecting.stats.decompositions > accepting.stats.decompositions

    def test_budget_is_enforced(self):
        # a wide interleave that cannot match forces exhaustive search
        expression = interleave_all(*(arc(EX[f"p{i}"], value_set(1)) for i in range(8)))
        triples = frozenset(
            Triple(NODE, EX[f"p{i}"], Literal(2)) for i in range(8)
        )
        engine = BacktrackingEngine(budget=1000)
        with pytest.raises(BacktrackingBudgetExceeded):
            engine.match_neighbourhood(expression, triples)

    def test_failure_reason_is_reported(self, paper_expression):
        engine = BacktrackingEngine()
        result = engine.match_neighbourhood(paper_expression, frozenset({A2}))
        assert not result.matched
        assert "no derivation tree" in result.reason

    def test_engine_is_callable(self, paper_expression):
        engine = BacktrackingEngine()
        assert engine(paper_expression, frozenset({A1})).matched
