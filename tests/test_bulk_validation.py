"""Bulk validation: soundness regressions and the shared-context fast path.

The regression tests pin down three bugs the bulk subsystem fixed (each of
them fails against the seed implementation):

* a coinductive success recorded while its hypothesis was still in progress
  used to be cached as definitive, flipping verdicts on cyclic data when the
  context was reused;
* failures derived while in-progress hypotheses were consulted were cached
  unconditionally;
* hitting the recursion-depth budget was cached like a semantic failure, so
  a node that merely exhausted the budget stayed non-conforming forever.

The property-style tests check that the shared-context bulk path (with the
global derivative cache and hash-consed expressions) agrees with the
fresh-context-per-node baseline, with the backtracking engine, and with the
workload generators' ground truth — including cyclic graphs and shape
references to literal objects.
"""

import pytest

from repro.rdf import EX, FOAF, Graph, Literal, Triple
from repro.shex import (
    BacktrackingEngine,
    DerivativeCache,
    DerivativeEngine,
    Schema,
    ShapeLabel,
    ValidationContext,
    Validator,
    arc,
    datatype,
    shape_ref,
    star,
)
from repro.rdf.namespaces import XSD
from repro.workloads import (
    generate_person_workload,
    knows_chain_graph,
    knows_cycle_graph,
    person_schema,
)

PERSON = ShapeLabel("Person")


def make_context(graph, schema, **kwargs) -> ValidationContext:
    engine = DerivativeEngine()
    return ValidationContext(graph, schema, engine.match_neighbourhood, **kwargs)


def cycle_with_invalid_member() -> Graph:
    """``a ↔ b`` knows-cycle where ``a`` is broken and ``b`` is otherwise fine.

    ``a`` is missing its mandatory ``foaf:name`` — a failure the derivative
    engine only discovers *after* consuming the ``knows`` arc (predicates are
    consumed in sorted order and ``age < knows < name``), so the coinductive
    reference to ``b`` has already been consulted when ``a`` fails.
    """
    graph = Graph()
    graph.add(Triple(EX.a, FOAF.age, Literal(40)))
    graph.add(Triple(EX.a, FOAF.knows, EX.b))  # no foaf:name → a fails
    graph.add(Triple(EX.b, FOAF.age, Literal(30)))
    graph.add(Triple(EX.b, FOAF.name, Literal("B")))
    graph.add(Triple(EX.b, FOAF.knows, EX.a))
    return graph


class TestHypothesisDependentCaching:
    """Satellite 1: verdicts derived under in-progress hypotheses are provisional."""

    def test_stale_coinductive_success_does_not_flip_a_later_verdict(self):
        # Validating `a` first hypothesises a→Person and (coinductively)
        # accepts `b` under that hypothesis; `a` then fails on its missing
        # name.  The seed cached b→Person as definitive, so querying `b` in
        # the same context wrongly conformed.  `b` does not conform: its
        # knows-arc points at a non-Person, and the shape is closed.
        context = make_context(cycle_with_invalid_member(), person_schema())
        assert not context.check_reference(EX.a, PERSON).matched
        assert not context.check_reference(EX.b, PERSON).matched
        assert not context.is_confirmed(EX.b, PERSON)

    def test_hypothesis_dependent_failure_is_not_cached(self):
        # `x` (no name) fails while the hypothesis y→Person is active — the
        # knows-arc consulted it before the missing name was discovered.  The
        # failure is correct here, but it rests on an assumption that is
        # retracted afterwards, so it must not be cached as definitive.
        graph = Graph()
        graph.add(Triple(EX.x, FOAF.age, Literal(30)))
        graph.add(Triple(EX.x, FOAF.knows, EX.y))  # no foaf:name → fails
        graph.add(Triple(EX.y, FOAF.age, Literal(30)))
        graph.add(Triple(EX.y, FOAF.name, Literal("Y")))
        graph.add(Triple(EX.y, FOAF.knows, EX.x))
        context = make_context(graph, person_schema())
        assert not context.check_reference(EX.y, PERSON).matched
        assert not context.is_failed(EX.x, PERSON)
        # a direct query settles it definitively
        assert not context.check_reference(EX.x, PERSON).matched
        assert context.is_failed(EX.x, PERSON)

    def test_valid_cycle_still_confirms_every_member(self):
        # the provisional machinery must not lose sound coinductive
        # confirmations: once the outermost frame of the cycle settles
        # successfully, every member is promoted.
        graph, head = knows_cycle_graph(4)
        context = make_context(graph, person_schema())
        result = context.check_reference(head, PERSON)
        assert result.matched
        for index in range(4):
            assert context.is_confirmed(EX[f"cycle{index}"], PERSON)

    def test_refuted_intermediate_hypothesis_drops_its_dependents(self):
        # A provisional success can rest on SEVERAL in-progress hypotheses at
        # once.  Here e→E succeeds while both o→O (outer) and m→M
        # (intermediate) are hypothesised; m→M is then refuted (no `t` arc)
        # but o→O settles successfully via its other Or-branch.  e→E must be
        # dropped with its refuted dependency, not promoted with the
        # surviving one.
        from repro.shex import alternative, interleave, shape_ref

        schema = Schema({
            "O": alternative(arc(EX.p, shape_ref("M")), arc(EX.p)),
            "M": interleave(arc(EX.q, shape_ref("E")), arc(EX.t)),
            "E": interleave(arc(EX.r, shape_ref("O")), arc(EX.s, shape_ref("M"))),
        })
        graph = Graph()
        graph.add(Triple(EX.o, EX.p, EX.m))
        graph.add(Triple(EX.m, EX.q, EX.e))
        graph.add(Triple(EX.e, EX.r, EX.o))
        graph.add(Triple(EX.e, EX.s, EX.m))
        expected = None
        for shared in (False, True):
            validator = Validator(graph, schema, shared_context=shared)
            report = validator.validate_graph(["O", "E"])
            verdicts = {(entry.node, str(entry.label)): entry.conforms
                        for entry in report}
            if expected is None:
                expected = verdicts
            assert verdicts == expected, f"shared={shared}"
            assert not verdicts[(EX.e, "E")]

    def test_shared_context_bulk_run_is_order_independent_on_cycles(self):
        graph = cycle_with_invalid_member()
        for shared in (True, False):
            validator = Validator(graph, person_schema(), shared_context=shared)
            report = validator.validate_graph()
            verdicts = {entry.node: entry.conforms for entry in report}
            assert verdicts == {EX.a: False, EX.b: False}, f"shared={shared}"


class TestStatsAliasing:
    """Satellite 2: report entries carry independent stats snapshots."""

    def test_entries_do_not_share_stats_objects(self):
        from repro.workloads import paper_example_graph

        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_graph()
        identities = {id(entry.stats) for entry in report}
        assert len(identities) == len(report.entries)

    def test_total_stats_equals_the_sum_of_entries(self):
        from repro.workloads import paper_example_graph

        for shared in (True, False):
            validator = Validator(paper_example_graph(), person_schema(),
                                  shared_context=shared)
            report = validator.validate_graph()
            totals = report.total_stats()
            assert totals.derivative_steps == sum(
                entry.stats.derivative_steps for entry in report)
            assert totals.reference_checks == sum(
                entry.stats.reference_checks for entry in report)

    def test_merge_still_mutates_but_combined_is_pure(self):
        from repro.shex import MatchStats

        left = MatchStats(derivative_steps=2)
        right = MatchStats(derivative_steps=3)
        combined = left.combined(right)
        assert combined.derivative_steps == 5
        assert left.derivative_steps == 2 and right.derivative_steps == 3
        assert combined is not left and combined is not right


class TestDepthBudget:
    """Satellite 3: budget exhaustion is non-cacheable and distinguishable."""

    def test_budget_failure_is_flagged(self):
        graph, head = knows_chain_graph(10)
        context = make_context(graph, person_schema(), max_recursion_depth=3)
        result = context.check_reference(head, PERSON)
        assert not result.matched
        assert result.limit_exceeded

    def test_budget_failure_is_not_cached(self):
        # chain p0→…→p4 with budget 3: validating the head exhausts the
        # budget, but p2 is only three hops from the end — a direct query
        # must succeed.  The seed cached the budget failure and flipped it.
        graph, head = knows_chain_graph(4)
        context = make_context(graph, person_schema(), max_recursion_depth=3)
        assert not context.check_reference(head, PERSON).matched
        assert not context.is_failed(EX.chain2, PERSON)
        retry = context.check_reference(EX.chain2, PERSON)
        assert retry.matched
        assert not retry.limit_exceeded

    def test_semantic_failures_are_not_flagged(self):
        context = make_context(cycle_with_invalid_member(), person_schema())
        result = context.check_reference(EX.a, PERSON)
        assert not result.matched
        assert not result.limit_exceeded

    def test_validator_surfaces_the_flag(self):
        graph, head = knows_chain_graph(10)
        validator = Validator(graph, person_schema(), max_recursion_depth=3)
        entry = validator.validate_node(head, "Person")
        assert not entry.conforms
        assert entry.limit_exceeded


class TestHashConsing:
    """Tentpole: structurally-equal expressions are pointer-equal."""

    def test_interning_makes_equal_expressions_identical(self):
        first = star(arc(EX.p, datatype(XSD.string))) & arc(EX.q)
        second = star(arc(EX.p, datatype(XSD.string))) & arc(EX.q)
        assert first is second

    def test_interning_survives_distinct_schemas(self):
        a = person_schema().expression("Person")
        b = person_schema().expression("Person")
        assert a is b


class TestDerivativeCache:
    """Tentpole: the global cross-node derivative cache."""

    def test_cache_is_shared_across_nodes_and_runs(self):
        cache = DerivativeCache()
        workload = generate_person_workload(num_people=15, seed=3)
        validator = Validator(workload.graph, workload.schema, cache=cache)
        validator.validate_graph()
        first_entries = len(cache)
        assert cache.hits > 0
        # a second run over a *different* graph with the same schema reuses
        # the derivative entries outright
        other = generate_person_workload(num_people=15, seed=4)
        Validator(other.graph, other.schema, cache=cache).validate_graph()
        assert len(cache) == first_entries

    def test_cached_engine_verdicts_match_uncached(self):
        workload = generate_person_workload(num_people=25, seed=5)
        plain = Validator(workload.graph, workload.schema, shared_context=False)
        cached = Validator(workload.graph, workload.schema,
                           shared_context=True, cache=True)
        plain_verdicts = {(e.node, e.conforms) for e in plain.validate_graph()}
        cached_verdicts = {(e.node, e.conforms) for e in cached.validate_graph()}
        assert plain_verdicts == cached_verdicts


class TestBulkAgreement:
    """Property-style: all engines and paths agree over the bulk API."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bulk_matches_ground_truth_and_per_node(self, seed):
        workload = generate_person_workload(num_people=20, invalid_fraction=0.3,
                                            seed=seed)
        valid = set(workload.valid_nodes)
        bulk = Validator(workload.graph, workload.schema,
                         shared_context=True, cache=True)
        per_node = Validator(workload.graph, workload.schema, shared_context=False)
        bulk_verdicts = {e.node: e.conforms for e in bulk.validate_graph()}
        per_node_verdicts = {e.node: e.conforms for e in per_node.validate_graph()}
        assert bulk_verdicts == per_node_verdicts
        for node in workload.all_nodes:
            assert bulk_verdicts[node] == (node in valid), node

    @pytest.mark.parametrize("seed", [0, 1])
    def test_derivatives_and_backtracking_agree_on_the_bulk_path(self, seed):
        workload = generate_person_workload(num_people=10, invalid_fraction=0.3,
                                            knows_probability=0.2, seed=seed)
        derivative = Validator(workload.graph, workload.schema,
                               shared_context=True, cache=True)
        backtracking = Validator(workload.graph, workload.schema,
                                 engine=BacktrackingEngine(budget=5_000_000),
                                 shared_context=True)
        d = {e.node: e.conforms for e in derivative.validate_graph()}
        b = {e.node: e.conforms for e in backtracking.validate_graph()}
        assert d == b

    def test_engines_agree_on_cyclic_graphs_via_shared_context(self):
        graph, _ = knows_cycle_graph(5)
        for engine in (DerivativeEngine(cache=True),
                       BacktrackingEngine(budget=5_000_000)):
            validator = Validator(graph, person_schema(), engine=engine,
                                  shared_context=True)
            report = validator.validate_graph()
            assert all(entry.conforms for entry in report), engine.name

    def test_literal_object_shape_references(self):
        # `@<Tag>` references whose objects are literals: a literal has an
        # empty neighbourhood, so it conforms exactly to nullable shapes.
        schema = Schema({
            "Tagged": star(arc(EX.tag, shape_ref("Tag"))) & arc(EX.id),
            "Tag": star(arc(EX.anything)),
        }, start="Tagged")
        graph = Graph()
        graph.add(Triple(EX.item, EX.id, Literal(1)))
        graph.add(Triple(EX.item, EX.tag, Literal("news")))
        graph.add(Triple(EX.item, EX.tag, Literal("sports")))
        for engine in (DerivativeEngine(cache=True),
                       BacktrackingEngine(budget=1_000_000)):
            validator = Validator(graph, schema, engine=engine, shared_context=True)
            assert validator.validate_node(EX.item, "Tagged").conforms, engine.name

    def test_infer_typing_shared_equals_fresh(self):
        workload = generate_person_workload(num_people=15, seed=7)
        shared = Validator(workload.graph, workload.schema,
                           shared_context=True, cache=True).infer_typing()
        fresh = Validator(workload.graph, workload.schema,
                          shared_context=False).infer_typing()
        assert shared == fresh


class TestGraphNeighbourhoodCache:
    def test_neighbourhood_ordered_is_cached_and_sorted(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.b, Literal(2)))
        graph.add(Triple(EX.n, EX.a, Literal(1)))
        first = graph.neighbourhood_ordered(EX.n)
        assert [t.predicate for t in first] == [EX.a, EX.b]
        assert graph.neighbourhood_ordered(EX.n) is first

    def test_mutation_invalidates_the_cache(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.a, Literal(1)))
        assert len(graph.neighbourhood(EX.n)) == 1
        graph.add(Triple(EX.n, EX.b, Literal(2)))
        assert len(graph.neighbourhood(EX.n)) == 2
        assert len(graph.neighbourhood_ordered(EX.n)) == 2
        graph.discard(Triple(EX.n, EX.a, Literal(1)))
        assert len(graph.neighbourhood(EX.n)) == 1

    def test_graph_mutation_invalidates_the_shared_context_automatically(self):
        graph = Graph()
        graph.add(Triple(EX.solo, FOAF.age, Literal(30)))
        graph.add(Triple(EX.solo, FOAF.name, Literal("Solo")))
        validator = Validator(graph, person_schema(), shared_context=True)
        assert validator.validate_graph().entry_for(EX.solo).conforms
        graph.add(Triple(EX.solo, FOAF.age, Literal(31)))  # now two ages → invalid
        assert not validator.validate_graph().entry_for(EX.solo).conforms
        # explicit reset also works (for non-graph state changes)
        validator.reset_context()
        assert not validator.validate_graph().entry_for(EX.solo).conforms

    def test_schema_reassignment_invalidates_the_shared_context(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.p, Literal(1)))
        lenient = Schema({"S": star(arc(EX.p))}, start="S")
        strict = Schema({"S": arc(EX.q)}, start="S")
        validator = Validator(graph, lenient, shared_context=True)
        assert validator.validate_graph().entry_for(EX.n).conforms
        validator.schema = strict
        assert not validator.validate_graph().entry_for(EX.n).conforms

    def test_unordered_engine_is_not_handed_presorted_neighbourhoods(self):
        from repro.shex import ValidationContext

        graph = Graph()
        graph.add(Triple(EX.n, EX.p, Literal(1)))
        ordered = DerivativeEngine(order_by_predicate=True)
        unordered = DerivativeEngine(order_by_predicate=False)
        ctx_ordered = ValidationContext(graph, person_schema(),
                                        ordered.match_neighbourhood)
        ctx_unordered = ValidationContext(graph, person_schema(),
                                          unordered.match_neighbourhood)
        assert ctx_ordered._ordered_neighbourhoods
        assert not ctx_unordered._ordered_neighbourhoods
