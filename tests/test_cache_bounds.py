"""Tests for the LRU-bounded DerivativeCache (ROADMAP: bounded caches)."""

from __future__ import annotations

import pytest

from repro.shex import Validator
from repro.shex.cache import DerivativeCache
from repro.workloads import generate_person_workload


def verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


class TestBoundedCache:
    def test_unbounded_by_default(self):
        cache = DerivativeCache()
        assert cache.max_entries is None
        assert cache.stats()["max_entries"] == 0
        assert cache.stats()["evictions"] == 0

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            DerivativeCache(max_entries=0)
        with pytest.raises(ValueError):
            DerivativeCache(max_entries=-3)

    def test_derivative_table_stays_within_the_bound(self):
        workload = generate_person_workload(num_people=30, seed=1)
        cache = DerivativeCache(max_entries=4)
        validator = Validator(workload.graph, workload.schema, cache=cache)
        validator.validate_graph()
        stats = cache.stats()
        assert stats["derivatives"] <= 4
        assert stats["constraint_verdicts"] <= 4
        assert stats["expressions"] <= 4  # the atom table honours the bound too
        assert stats["evictions"] > 0

    def test_eviction_never_changes_verdicts(self):
        workload = generate_person_workload(num_people=25, seed=2)
        unbounded = Validator(workload.graph, workload.schema,
                              cache=DerivativeCache())
        tiny = Validator(workload.graph, workload.schema,
                         cache=DerivativeCache(max_entries=2))
        assert verdicts(tiny.validate_graph()) == verdicts(unbounded.validate_graph())

    def test_lru_recency_protects_hot_entries(self):
        cache = DerivativeCache(max_entries=2)
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import arc, star

        hot = star(arc(EX.a, 1))
        cold = star(arc(EX.b, 1))
        third = star(arc(EX.c, 1))
        cache.store(hot, (True,), hot)
        cache.store(cold, (True,), cold)
        assert cache.lookup(hot, (True,)) is hot   # refresh hot's recency
        cache.store(third, (True,), third)         # evicts cold, not hot
        assert cache.lookup(hot, (True,)) is hot
        assert cache.lookup(cold, (True,)) is None
        assert cache.evictions == 1

    def test_clear_resets_eviction_counter(self):
        cache = DerivativeCache(max_entries=1)
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import arc

        cache.store(arc(EX.a, 1), (True,), arc(EX.a, 1))
        cache.store(arc(EX.b, 1), (True,), arc(EX.b, 1))
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0
        assert len(cache) == 0

    def test_bounded_cache_travels_to_parallel_workers(self):
        # an instance with a bound is rebuilt per worker with the same bound
        workload = generate_person_workload(num_people=12, seed=3)
        cache = DerivativeCache(max_entries=64)
        serial = Validator(workload.graph, workload.schema, cache=DerivativeCache())
        parallel = Validator(workload.graph, workload.schema, cache=cache, jobs=2)
        assert verdicts(parallel.validate_graph()) == \
            verdicts(serial.validate_graph())


class TestBoundedInternTables:
    """The expression interning tables honour an explicit bound (ROADMAP)."""

    def setup_method(self):
        from repro.shex.expressions import clear_intern_tables, set_intern_limit

        set_intern_limit(None)
        clear_intern_tables()

    teardown_method = setup_method

    def test_unbounded_by_default(self):
        from repro.shex.expressions import expression_cache_stats

        stats = expression_cache_stats()
        assert stats["limit"] == 0
        assert stats["evictions"] == 0

    def test_rejects_nonpositive_limits(self):
        from repro.shex.expressions import set_intern_limit

        with pytest.raises(ValueError):
            set_intern_limit(0)

    def test_interning_honours_the_limit(self):
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import (
            arc,
            expression_cache_stats,
            set_intern_limit,
        )

        set_intern_limit(8)
        for index in range(50):
            arc(EX[f"p{index}"], index)
        stats = expression_cache_stats()
        assert stats["interned"] <= 8
        assert stats["evictions"] > 0

    def test_setting_a_smaller_limit_trims_existing_tables(self):
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import (
            arc,
            expression_cache_stats,
            set_intern_limit,
        )

        for index in range(20):
            arc(EX[f"q{index}"], index)
        set_intern_limit(4)
        assert expression_cache_stats()["interned"] <= 4

    def test_evicted_expressions_keep_structural_equality(self):
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import arc, set_intern_limit

        set_intern_limit(1)
        first = arc(EX.a, 1)
        arc(EX.b, 2)  # evicts the first entry
        again = arc(EX.a, 1)
        assert first == again  # equal, even if no longer pointer-equal

    def test_size_cache_honours_the_limit(self):
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import (
            arc,
            expression_cache_stats,
            expression_size,
            interleave_all,
            set_intern_limit,
        )

        set_intern_limit(4)
        expr = interleave_all(*[arc(EX[f"r{i}"], i) for i in range(10)])
        assert expression_size(expr) == 19  # 10 arcs + 9 interleave nodes
        assert expression_cache_stats()["sizes"] <= 4

    def test_verdicts_survive_a_tiny_intern_limit(self):
        from repro.shex.expressions import set_intern_limit

        baseline = generate_person_workload(num_people=15, seed=5)
        plain = verdicts(Validator(baseline.graph, baseline.schema).validate_graph())
        set_intern_limit(2)
        workload = generate_person_workload(num_people=15, seed=5)
        bounded = verdicts(Validator(workload.graph, workload.schema).validate_graph())
        assert bounded == plain
