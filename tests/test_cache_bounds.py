"""Tests for the LRU-bounded DerivativeCache (ROADMAP: bounded caches)."""

from __future__ import annotations

import pytest

from repro.shex import Validator
from repro.shex.cache import DerivativeCache
from repro.workloads import generate_person_workload


def verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


class TestBoundedCache:
    def test_unbounded_by_default(self):
        cache = DerivativeCache()
        assert cache.max_entries is None
        assert cache.stats()["max_entries"] == 0
        assert cache.stats()["evictions"] == 0

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            DerivativeCache(max_entries=0)
        with pytest.raises(ValueError):
            DerivativeCache(max_entries=-3)

    def test_derivative_table_stays_within_the_bound(self):
        workload = generate_person_workload(num_people=30, seed=1)
        cache = DerivativeCache(max_entries=4)
        validator = Validator(workload.graph, workload.schema, cache=cache)
        validator.validate_graph()
        stats = cache.stats()
        assert stats["derivatives"] <= 4
        assert stats["constraint_verdicts"] <= 4
        assert stats["expressions"] <= 4  # the atom table honours the bound too
        assert stats["evictions"] > 0

    def test_eviction_never_changes_verdicts(self):
        workload = generate_person_workload(num_people=25, seed=2)
        unbounded = Validator(workload.graph, workload.schema,
                              cache=DerivativeCache())
        tiny = Validator(workload.graph, workload.schema,
                         cache=DerivativeCache(max_entries=2))
        assert verdicts(tiny.validate_graph()) == verdicts(unbounded.validate_graph())

    def test_lru_recency_protects_hot_entries(self):
        cache = DerivativeCache(max_entries=2)
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import arc, star

        hot = star(arc(EX.a, 1))
        cold = star(arc(EX.b, 1))
        third = star(arc(EX.c, 1))
        cache.store(hot, (True,), hot)
        cache.store(cold, (True,), cold)
        assert cache.lookup(hot, (True,)) is hot   # refresh hot's recency
        cache.store(third, (True,), third)         # evicts cold, not hot
        assert cache.lookup(hot, (True,)) is hot
        assert cache.lookup(cold, (True,)) is None
        assert cache.evictions == 1

    def test_clear_resets_eviction_counter(self):
        cache = DerivativeCache(max_entries=1)
        from repro.rdf.namespaces import EX
        from repro.shex.expressions import arc

        cache.store(arc(EX.a, 1), (True,), arc(EX.a, 1))
        cache.store(arc(EX.b, 1), (True,), arc(EX.b, 1))
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0
        assert len(cache) == 0

    def test_bounded_cache_travels_to_parallel_workers(self):
        # an instance with a bound is rebuilt per worker with the same bound
        workload = generate_person_workload(num_people=12, seed=3)
        cache = DerivativeCache(max_entries=64)
        serial = Validator(workload.graph, workload.schema, cache=DerivativeCache())
        parallel = Validator(workload.graph, workload.schema, cache=cache, jobs=2)
        assert verdicts(parallel.validate_graph()) == \
            verdicts(serial.validate_graph())
