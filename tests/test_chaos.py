"""Chaos suite: randomized seeded fault schedules against the resident
fleet service, asserting the surviving service **converges** — after
bounded idempotent retries the verdicts are byte-identical to a fault-free
run, no delta is ever double-applied, and degraded reads answer inside
every outage window.

Fault schedules are sampled from the *transient* region of the hit space.
Occurrence counters restart when a worker respawns, and a healed worker
deterministically replays the same short command prefix (``load``,
``check``, ``revalidate``, ``verdicts`` → response occurrences 0–3, first
``revalidate`` at occurrence 0), so a spec whose hit lands inside that
replay window re-fires on every fresh process: that models a deterministic
poison-pill bug, not a transient fault, and no amount of retrying can
converge it.  Hits outside the window fire once and heal."""

from __future__ import annotations

import functools
import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    DeltaRequest,
    FaultPlan,
    FaultSpec,
    ServiceError,
    ValidationSession,
)
from repro.workloads import generate_community_workload, person_schema

ROUNDS = 3
MAX_ATTEMPTS = 6

# (point, convergent hit choices): see the module docstring for why the
# revalidate crashes exclude hit 0 and the drop excludes hits 0-3.
TRANSIENT_FAULTS = (
    ("fleet.crash-before-apply", (0, 1, 2)),
    ("fleet.crash-after-apply", (0, 1, 2)),
    ("fleet.crash-before-revalidate", (1, 2, 3)),
    ("fleet.crash-after-revalidate", (1, 2, 3)),
    ("fleet.drop-response", (4, 5, 6)),
    ("fleet.stall", (0, 1, 2, 3)),
)


def community():
    return generate_community_workload(
        num_communities=2, people_per_community=4,
        invalid_fraction=0.25, seed=11)


def round_delta(workload, round_index):
    nodes = sorted(workload.all_nodes, key=lambda t: t.value)
    victim = nodes[round_index % len(nodes)]
    extra = nodes[(round_index + 3) % len(nodes)]
    bad_age = (f'{victim.n3()} <http://xmlns.com/foaf/0.1/age> '
               '"9999"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
    alias = (f'{extra.n3()} <http://xmlns.com/foaf/0.1/name> '
             f'"Alias {round_index}" .\n')
    if round_index % 2 == 0:
        return DeltaRequest(add=bad_age + alias, delta_id=f"round-{round_index}")
    return DeltaRequest(remove=bad_age, add=alias,
                        delta_id=f"round-{round_index}")


def verdict_blob(session, workload):
    return tuple(
        json.dumps(session.verdict(node.n3()).to_json(), sort_keys=True)
        for node in sorted(workload.all_nodes, key=lambda t: t.value))


def response_key(response):
    """The convergence-relevant part of a DeltaResponse.

    A retried round may re-derive different revalidation *work* stats
    (a healed shard reports an empty delta and serves its pairs from the
    fresh baseline), but what the delta did to the graph and what the
    verdicts became must be identical."""
    return (response.generation, response.added, response.removed,
            response.conforms)


def transient_plan(seed: int) -> FaultPlan:
    """A random schedule drawn entirely from the transient hit region."""
    rng = random.Random(seed)
    specs = []
    for point, hit_choices in TRANSIENT_FAULTS:
        if rng.random() < 0.5:
            continue
        specs.append(FaultSpec(
            point=point,
            shard=rng.randrange(2),
            hits=(rng.choice(hit_choices),),
            delay=0.3 if point == "fleet.stall" else 0.0,
        ))
    return FaultPlan(specs=tuple(specs), seed=seed)


@functools.lru_cache(maxsize=1)
def fault_free_run():
    """The reference run every faulty schedule must converge to."""
    workload = community()
    session = ValidationSession(workload.graph, person_schema())
    try:
        session.validate()
        keys = tuple(response_key(session.apply_delta(
            round_delta(workload, i))) for i in range(ROUNDS))
        return (keys, verdict_blob(session, workload), len(session.graph),
                session.generation)
    finally:
        session.close()


def check_degraded_window(session, workload):
    """Inside an outage window a degraded read must answer (or be a typed
    verdict-unavailable), never a stale-baseline refusal or a crash."""
    node = sorted(workload.all_nodes, key=lambda t: t.value)[0]
    try:
        verdict = session.verdict(node.n3(), allow_degraded=True)
    except ServiceError as error:
        assert error.code == "verdict-unavailable"
        return
    if verdict.degraded:
        assert isinstance(verdict.missing_shards, tuple)


class TestSeededFaultSchedulesConverge:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_faulty_run_converges_to_fault_free_verdicts(self, seed):
        expected_keys, expected_blob, expected_len, expected_generation = \
            fault_free_run()
        plan = transient_plan(seed)
        workload = community()
        session = ValidationSession(workload.graph, person_schema(),
                                    shards=2, fault_plan=plan,
                                    fleet_response_timeout=2.0)
        try:
            session.validate()
            keys = []
            for index in range(ROUNDS):
                request = round_delta(workload, index)
                last_error = None
                for _attempt in range(MAX_ATTEMPTS):
                    try:
                        keys.append(response_key(
                            session.apply_delta(request)))
                        break
                    except ServiceError as error:
                        # only the injected outage modes may surface, and
                        # degraded reads must answer inside the window.
                        assert error.http_status == 503, error
                        assert error.code == "fleet-worker-died", error
                        last_error = error
                        check_degraded_window(session, workload)
                else:
                    raise AssertionError(
                        f"delta {index} never converged under plan "
                        f"{plan.to_json()}: {last_error}")

            # convergence: byte-identical verdicts, identical graph state,
            # every delta applied exactly once.
            assert tuple(keys) == expected_keys
            assert verdict_blob(session, workload) == expected_blob
            assert len(session.graph) == expected_len
            assert session.generation == expected_generation
            stats = session.stats().to_json()["session"]
            assert stats["delta_rounds"] == ROUNDS
        finally:
            session.close()


class TestReplayStormsNeverDoubleApply:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_duplicate_sends_are_replayed_not_reapplied(self, seed):
        """A client retrying over-eagerly (duplicates of every delta, in
        bursts) must observe the exact original responses; the graph and
        generation advance as if each delta was sent once."""
        expected_keys, expected_blob, expected_len, expected_generation = \
            fault_free_run()
        rng = random.Random(seed)
        workload = community()
        session = ValidationSession(workload.graph, person_schema())
        try:
            session.validate()
            replays = 0
            for index in range(ROUNDS):
                request = round_delta(workload, index)
                first = session.apply_delta(request)
                for _dup in range(rng.randrange(1, 4)):
                    replays += 1
                    assert session.apply_delta(request) == first
                if rng.random() < 0.5:  # a stale duplicate of an OLD delta
                    old = round_delta(workload, rng.randrange(index + 1))
                    replays += 1
                    session.apply_delta(old)
                assert response_key(first) == expected_keys[index]
            assert verdict_blob(session, workload) == expected_blob
            assert len(session.graph) == expected_len
            assert session.generation == expected_generation
            stats = session.stats().to_json()["session"]
            assert stats["delta_rounds"] == ROUNDS
            assert stats["replayed_deltas"] == replays
        finally:
            session.close()


class TestFaultPlansAreReproducible:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_schedule_round_trips_and_replays_deterministically(self, seed):
        """The schedule a chaos run prints as its failure artifact must
        rebuild the exact same plan — the whole point of seeded faults."""
        plan = transient_plan(seed)
        assert transient_plan(seed) == plan
        assert FaultPlan.from_json(
            json.loads(json.dumps(plan.to_json()))) == plan
