"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.workloads import PAPER_EXAMPLE_TURTLE, PERSON_SCHEMA_SHEXC


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "people.ttl"
    path.write_text(PAPER_EXAMPLE_TURTLE, encoding="utf-8")
    return str(path)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "person.shex"
    path.write_text(PERSON_SCHEMA_SHEXC, encoding="utf-8")
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_validate_arguments(self):
        args = build_parser().parse_args([
            "validate", "--data", "d.ttl", "--schema", "s.shex", "--all-nodes",
        ])
        assert args.command == "validate"
        assert args.engine == "derivatives"


class TestValidateCommand:
    def test_all_nodes_text_output(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--all-nodes"])
        output = capsys.readouterr().out
        assert exit_code == 1  # :mary fails
        assert "FAILS" in output
        assert "2/3 conform" in output

    def test_shape_map_conforming_only(self, data_file, schema_file, capsys):
        exit_code = main([
            "validate", "--data", data_file, "--schema", schema_file,
            "--shape-map", "<http://example.org/john>@<Person>",
        ])
        assert exit_code == 0
        assert "conforms" in capsys.readouterr().out

    def test_query_shape_map_from_file(self, data_file, schema_file, tmp_path, capsys):
        map_file = tmp_path / "map.smap"
        map_file.write_text("{FOCUS foaf:age _}@<Person>", encoding="utf-8")
        exit_code = main([
            "validate", "--data", data_file, "--schema", schema_file,
            "--shape-map-file", str(map_file), "--format", "summary",
        ])
        assert exit_code == 1
        assert "2/3 conform" in capsys.readouterr().out

    def test_json_output(self, data_file, schema_file, capsys):
        exit_code = main([
            "validate", "--data", data_file, "--schema", schema_file,
            "--all-nodes", "--format", "json", "--include-stats",
        ])
        data = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert data["conforms"] is False
        assert len(data["entries"]) == 3

    def test_csv_output(self, data_file, schema_file, capsys):
        main(["validate", "--data", data_file, "--schema", schema_file,
              "--all-nodes", "--format", "csv"])
        output = capsys.readouterr().out
        assert output.startswith("node,shape,conforms")

    def test_backtracking_engine_option(self, data_file, schema_file, capsys):
        exit_code = main([
            "validate", "--data", data_file, "--schema", schema_file,
            "--shape", "Person", "--engine", "backtracking", "--format", "summary",
        ])
        assert exit_code == 1
        assert "2/3 conform" in capsys.readouterr().out

    def test_missing_selection_is_a_usage_error(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file])
        assert exit_code == 2
        assert "choose" in capsys.readouterr().err

    def test_parallel_jobs_match_serial(self, data_file, schema_file, capsys):
        serial = main(["validate", "--data", data_file, "--schema", schema_file,
                       "--all-nodes", "--bulk", "--format", "summary"])
        serial_out = capsys.readouterr().out
        parallel = main(["validate", "--data", data_file, "--schema", schema_file,
                         "--all-nodes", "--bulk", "--jobs", "2",
                         "--format", "summary"])
        parallel_out = capsys.readouterr().out
        assert parallel == serial == 1  # :mary fails either way
        assert parallel_out == serial_out

    def test_jobs_rejects_per_node(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--all-nodes", "--jobs", "2", "--per-node"])
        assert exit_code == 2
        assert "per-node" in capsys.readouterr().err

    def test_jobs_rejects_shape_map_mode(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--shape-map", "<http://example.org/john>@<Person>",
                          "--jobs", "2"])
        assert exit_code == 2
        assert "whole-graph" in capsys.readouterr().err

    def test_jobs_rejects_sparql_engine(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--all-nodes", "--jobs", "2", "--engine", "sparql"])
        assert exit_code == 2
        assert "sparql" in capsys.readouterr().err

    def test_cache_stats_are_printed_to_stderr(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--all-nodes", "--cache-stats", "--format", "summary"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "cache-stats:" in err
        assert "hits=" in err and "evictions=" in err

    def test_cache_max_entries_bounds_the_cache(self, data_file, schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--all-nodes", "--cache-stats", "--cache-max-entries", "2",
                          "--format", "summary"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "max_entries=2" in captured.err
        assert "2/3 conform" in captured.out  # verdicts unchanged under eviction

    def test_journal_stats_are_printed_with_cache_stats(self, data_file,
                                                        schema_file, capsys):
        exit_code = main(["validate", "--data", data_file, "--schema", schema_file,
                          "--all-nodes", "--cache-stats", "--format", "summary"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "journal-stats:" in err
        assert "tracked_subjects=" in err

    def test_broken_schema_reports_parse_error(self, data_file, tmp_path, capsys):
        broken = tmp_path / "broken.shex"
        broken.write_text("<S> { not valid", encoding="utf-8")
        exit_code = main(["validate", "--data", data_file, "--schema", str(broken),
                          "--all-nodes"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestOtherCommands:
    def test_revalidate_applies_a_change_set_incrementally(
            self, data_file, schema_file, tmp_path, capsys):
        # :mary fails in the base data (duplicate age); the change set
        # repairs her, so the incremental pass must flip her to conforming
        fix = tmp_path / "fix.ttl"
        fix.write_text(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n"
            "@prefix : <http://example.org/> .\n"
            ":mary foaf:age 65 .\n", encoding="utf-8")
        name = tmp_path / "name.ttl"
        name.write_text(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n"
            "@prefix : <http://example.org/> .\n"
            ':mary foaf:name "Mary" .\n', encoding="utf-8")
        exit_code = main(["revalidate", "--data", data_file,
                          "--schema", schema_file,
                          "--add", str(name), "--remove", str(fix),
                          "--format", "summary", "--cache-stats"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "3/3 conform" in captured.out
        assert "revalidate: +1/-1 triples" in captured.err
        assert "dirty subject(s)" in captured.err
        assert "journal-stats:" in captured.err

    def test_revalidate_delta_only_output(self, data_file, schema_file,
                                          tmp_path, capsys):
        extra = tmp_path / "extra.ttl"
        extra.write_text(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n"
            "@prefix : <http://example.org/> .\n"
            ":mary foaf:age 99 .\n", encoding="utf-8")
        exit_code = main(["revalidate", "--data", data_file,
                          "--schema", schema_file, "--add", str(extra),
                          "--delta-only", "--format", "summary"])
        captured = capsys.readouterr()
        assert exit_code == 1
        # only mary's pair was recomputed: the delta holds a single entry
        assert "0/1 conform" in captured.out

    def test_revalidate_requires_a_change_set(self, data_file, schema_file,
                                              capsys):
        exit_code = main(["revalidate", "--data", data_file,
                          "--schema", schema_file])
        assert exit_code == 2
        assert "change set" in capsys.readouterr().err

    def test_check_schema(self, schema_file, capsys):
        assert main(["check-schema", schema_file]) == 0
        output = capsys.readouterr().out
        assert "1 shape(s)" in output and "recursive" in output

    def test_check_data(self, data_file, capsys):
        assert main(["check-data", data_file]) == 0
        assert "8 triples" in capsys.readouterr().out

    def test_check_data_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.ttl"
        bad.write_text(":no :prefix :bound .", encoding="utf-8")
        assert main(["check-data", str(bad)]) == 2

    def test_sparql_select(self, data_file, tmp_path, capsys):
        query = tmp_path / "query.rq"
        query.write_text("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:knows ?o }
        """, encoding="utf-8")
        assert main(["sparql", "--data", data_file, "--query", str(query)]) == 0
        output = capsys.readouterr().out
        assert "john" in output and "1 solution(s)" in output

    def test_sparql_ask_false_sets_exit_code(self, data_file, tmp_path, capsys):
        query = tmp_path / "ask.rq"
        query.write_text("ASK { ?s <http://example.org/nothing> ?o }", encoding="utf-8")
        assert main(["sparql", "--data", data_file, "--query", str(query)]) == 1
        assert "false" in capsys.readouterr().out

    def test_generate_person_workload(self, tmp_path, capsys):
        output_file = tmp_path / "generated.ttl"
        exit_code = main(["generate-workload", "--kind", "person", "--size", "10",
                          "--seed", "3", "--output", str(output_file)])
        assert exit_code == 0
        content = output_file.read_text(encoding="utf-8")
        assert "person workload" in content
        assert "foaf:age" in content

    def test_generate_portal_workload_to_stdout(self, capsys):
        exit_code = main(["generate-workload", "--kind", "portal", "--size", "5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "portal workload" in output
        assert "dcat:" in output
