"""Tests for the dictionary-encoded columnar term store.

Covers the :class:`TermDictionary` id algebra, the ``ColumnarGraph`` store
contract (it must be observationally identical to the dict-backed
:class:`Graph`), segment/tombstone mechanics, streaming N-Triples ingest,
the shared compact snapshot codec and the ``--store`` CLI flag.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.rdf import (
    EX,
    FOAF,
    XSD,
    BNode,
    ColumnarGraph,
    Graph,
    GraphError,
    IRI,
    Literal,
    TermDictionary,
    Triple,
    serialize_ntriples,
)
from repro.rdf.dictionary import BNODE_BASE, LITERAL_BASE
from repro.shex import Validator
from repro.workloads import (
    PAPER_EXAMPLE_TURTLE,
    PERSON_SCHEMA_SHEXC,
    generate_person_workload,
    paper_example_graph,
    person_schema,
)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


class TestTermDictionary:
    def test_roundtrip_all_kinds(self):
        d = TermDictionary()
        terms = [
            IRI("http://example.org/a"),
            BNode("b0"),
            Literal("x"),
            Literal("7", datatype=XSD.integer),
            Literal("hola", lang="es"),
        ]
        ids = [d.encode(term) for term in terms]
        assert [d.decode(tid) for tid in ids] == terms
        assert len(d) == len(terms)

    def test_encoding_is_idempotent(self):
        d = TermDictionary()
        assert d.encode_iri("http://e/x") == d.encode_iri("http://e/x")
        assert d.encode(Literal(1)) == d.encode(Literal(1))
        assert len(d) == 2

    def test_per_kind_id_ranges(self):
        d = TermDictionary()
        iri = d.encode(IRI("http://e/i"))
        bnode = d.encode(BNode("b"))
        literal = d.encode(Literal("l"))
        assert 0 <= iri < BNODE_BASE
        assert BNODE_BASE <= bnode < LITERAL_BASE
        assert literal >= LITERAL_BASE
        assert d.is_iri_id(iri) and not d.is_iri_id(bnode)
        assert d.is_bnode_id(bnode) and not d.is_bnode_id(literal)
        assert d.is_literal_id(literal) and not d.is_literal_id(iri)
        assert d.is_subject_id(iri) and d.is_subject_id(bnode)
        assert not d.is_subject_id(literal)

    def test_lookup_never_interns(self):
        d = TermDictionary()
        assert d.lookup(IRI("http://e/unknown")) is None
        assert len(d) == 0
        tid = d.encode(IRI("http://e/known"))
        assert d.lookup(IRI("http://e/known")) == tid

    def test_decode_is_memoised_and_counted(self):
        d = TermDictionary()
        tid = d.encode_iri("http://e/x")
        assert d.decoded_terms == 0
        first = d.decode(tid)
        assert d.decoded_terms == 1
        assert d.decode(tid) is first
        assert d.decoded_terms == 1

    def test_sort_keys_match_term_sort_keys(self):
        d = TermDictionary()
        terms = [IRI("http://e/a"), BNode("b"), Literal("x"),
                 Literal("5", datatype=XSD.integer), Literal("hi", lang="en")]
        for term in terms:
            assert d.sort_key(d.encode(term)) == term.sort_key()

    def test_encode_rejects_non_terms(self):
        with pytest.raises(GraphError):
            TermDictionary().encode("not a term")  # type: ignore[arg-type]


class TestStoreContract:
    """ColumnarGraph answers every query exactly like the dict store."""

    @pytest.fixture
    def pair(self):
        dict_graph = paper_example_graph()
        columnar = ColumnarGraph(dict_graph, segment_size=4)
        return dict_graph, columnar

    def test_equality_across_stores(self, pair):
        dict_graph, columnar = pair
        assert len(dict_graph) == len(columnar)
        assert dict_graph == columnar
        assert columnar == dict_graph
        assert columnar.to_set() == dict_graph.to_set()

    def test_membership_and_patterns(self, pair):
        dict_graph, columnar = pair
        for triple in dict_graph:
            assert triple in columnar
        john = EX.john
        assert set(columnar.triples(subject=john)) \
            == set(dict_graph.triples(subject=john))
        assert set(columnar.triples(predicate=FOAF.age)) \
            == set(dict_graph.triples(predicate=FOAF.age))
        assert set(columnar.triples(obj=EX.bob)) \
            == set(dict_graph.triples(obj=EX.bob))
        assert set(columnar.triples(subject=john, predicate=FOAF.name)) \
            == set(dict_graph.triples(subject=john, predicate=FOAF.name))

    def test_neighbourhoods_and_degrees(self, pair):
        dict_graph, columnar = pair
        for node in dict_graph.nodes():
            assert columnar.neighbourhood(node) == dict_graph.neighbourhood(node)
            assert list(columnar.neighbourhood_ordered(node)) \
                == list(dict_graph.neighbourhood_ordered(node))
            assert set(columnar.neighbourhood_any(node)) \
                == set(dict_graph.neighbourhood_any(node))
            assert columnar.degree(node) == dict_graph.degree(node)
            assert columnar.predicate_counts(node) \
                == dict_graph.predicate_counts(node)
        assert set(columnar.nodes()) == set(dict_graph.nodes())

    def test_unknown_node_queries(self, pair):
        _, columnar = pair
        ghost = EX.nobody
        assert columnar.neighbourhood(ghost) == frozenset()
        assert list(columnar.neighbourhood_ordered(ghost)) == []
        assert list(columnar.neighbourhood_any(ghost)) == []
        assert columnar.degree(ghost) == 0
        assert columnar.predicate_counts(ghost) == {}
        assert list(columnar.triples(subject=ghost)) == []

    def test_in_edges_fast_path(self, pair):
        dict_graph, columnar = pair
        for node in dict_graph.all_nodes():
            expected = {(t.predicate, t.subject)
                        for t in dict_graph.triples(obj=node)}
            assert set(columnar.in_edges(node)) == expected

    def test_copy_and_union(self, pair):
        _, columnar = pair
        clone = columnar.copy()
        assert clone == columnar and clone is not columnar
        assert isinstance(clone, ColumnarGraph)
        clone.add(Triple(EX.new, FOAF.name, Literal("New")))
        assert len(clone) == len(columnar) + 1


class TestSegmentsAndTombstones:
    def test_tail_flushes_into_segments(self):
        graph = ColumnarGraph(segment_size=4)
        triples = [Triple(EX[f"s{i}"], FOAF.age, Literal(i)) for i in range(10)]
        graph.add_all(triples)
        stats = graph.store_stats()
        assert stats["segments"] == 2
        assert stats["segment_rows"] == 8
        assert stats["tail_rows"] == 2
        assert stats["peak_tail_rows"] <= 4
        assert len(graph) == 10
        assert set(graph) == set(triples)

    def test_duplicate_add_is_a_noop(self):
        graph = ColumnarGraph(segment_size=2)
        triple = Triple(EX.s, FOAF.age, Literal(1))
        generation = graph.add(triple).generation
        graph.add(triple)
        assert len(graph) == 1
        assert graph.generation == generation

    def test_discard_from_tail_and_segment(self):
        graph = ColumnarGraph(segment_size=2)
        seg_triple = Triple(EX.a, FOAF.age, Literal(1))
        graph.add(seg_triple)
        graph.add(Triple(EX.a, FOAF.name, Literal("A")))  # flushes a segment
        tail_triple = Triple(EX.b, FOAF.age, Literal(2))
        graph.add(tail_triple)
        assert graph.store_stats()["segments"] == 1

        graph.discard(tail_triple)  # tail removal: dropped directly
        assert tail_triple not in graph
        assert graph.store_stats()["tombstones"] == 0

        graph.discard(seg_triple)  # segment removal: tombstoned
        assert seg_triple not in graph
        assert graph.store_stats()["tombstones"] == 1
        assert len(graph) == 1
        assert set(graph.triples(subject=EX.a)) \
            == {Triple(EX.a, FOAF.name, Literal("A"))}

    def test_tombstoned_row_can_be_revived(self):
        graph = ColumnarGraph(segment_size=1)
        triple = Triple(EX.a, FOAF.age, Literal(1))
        graph.add(triple)
        graph.discard(triple)
        assert triple not in graph and len(graph) == 0
        graph.add(triple)
        assert triple in graph and len(graph) == 1
        assert graph.store_stats()["tombstones"] == 0

    def test_clear_keeps_dictionary_but_drops_triples(self):
        graph = ColumnarGraph(segment_size=2)
        graph.add(Triple(EX.a, FOAF.age, Literal(1)))
        generation = graph.generation
        dictionary_size = graph.store_stats()["dictionary"]["terms"]
        graph.clear()
        assert len(graph) == 0
        assert graph.generation > generation
        assert graph.changes_since(generation) is None  # journal truncated
        assert graph.store_stats()["dictionary"]["terms"] == dictionary_size

    def test_segment_size_must_be_positive(self):
        with pytest.raises(GraphError):
            ColumnarGraph(segment_size=0)


class TestJournalParity:
    def test_generation_and_changes_since_match_dict_store(self):
        ops = [
            ("add", Triple(EX.a, FOAF.age, Literal(1))),
            ("add", Triple(EX.b, FOAF.age, Literal(2))),
            ("remove", Triple(EX.a, FOAF.age, Literal(1))),
            ("add", Triple(EX.a, FOAF.name, Literal("A"))),
        ]
        dict_graph, columnar = Graph(), ColumnarGraph(segment_size=2)
        start_dict, start_col = dict_graph.generation, columnar.generation
        for kind, triple in ops:
            for graph in (dict_graph, columnar):
                graph.add(triple) if kind == "add" else graph.discard(triple)
        assert dict_graph.generation - start_dict \
            == columnar.generation - start_col
        assert columnar.changes_since(start_col) \
            == dict_graph.changes_since(start_dict)

    def test_batch_coalesces_and_blocks_changes_since(self):
        graph = ColumnarGraph(segment_size=2)
        before = graph.generation
        with graph.batch():
            graph.add(Triple(EX.a, FOAF.age, Literal(1)))
            graph.add(Triple(EX.a, FOAF.name, Literal("A")))
            with pytest.raises(GraphError):
                graph.changes_since(before)
        assert graph.changes_since(before) == frozenset({EX.a})

    def test_journal_overflow_answers_none(self):
        graph = ColumnarGraph(segment_size=2, journal_max_entries=2)
        before = graph.generation
        for i in range(8):
            graph.add(Triple(EX[f"s{i}"], FOAF.age, Literal(i)))
        assert graph.changes_since(before) is None


class TestStreamingIngest:
    def test_generator_ingest_stays_segment_bounded(self):
        segment_size = 16
        total = 100

        def lines():
            for i in range(total):
                yield (f"<http://example.org/s{i}> "
                       f"<http://xmlns.com/foaf/0.1/age> "
                       f'"{i}"^^<http://www.w3.org/2001/XMLSchema#integer> .')

        graph = ColumnarGraph(segment_size=segment_size)
        assert graph.ingest_ntriples(lines()) == total
        stats = graph.store_stats()
        assert stats["peak_tail_rows"] <= segment_size
        assert stats["segments"] == total // segment_size
        assert len(graph) == total

    def test_ingested_graph_validates_like_the_dict_store(self):
        workload = generate_person_workload(num_people=12, seed=3)
        data = serialize_ntriples(workload.graph)
        columnar = ColumnarGraph(segment_size=8)
        columnar.ingest_ntriples(data.splitlines())
        assert columnar == workload.graph
        dict_report = Validator(workload.graph, workload.schema).validate_graph()
        col_report = Validator(columnar, workload.schema).validate_graph()
        assert _verdicts(col_report) == _verdicts(dict_report)
        assert col_report.typing == dict_report.typing

    def test_parse_both_formats(self):
        nt = ('<http://example.org/a> <http://xmlns.com/foaf/0.1/name> '
              '"Ann" .')
        from_nt = ColumnarGraph.parse(nt, format="ntriples")
        assert len(from_nt) == 1
        from_ttl = ColumnarGraph.parse(PAPER_EXAMPLE_TURTLE, format="turtle")
        assert from_ttl == paper_example_graph()


class TestValidationParity:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_verdicts_match_on_person_workload(self, jobs):
        workload = generate_person_workload(num_people=10, seed=5)
        columnar = ColumnarGraph(workload.graph, segment_size=16)
        dict_report = Validator(workload.graph, workload.schema,
                                jobs=jobs).validate_graph()
        col_report = Validator(columnar, workload.schema,
                               jobs=jobs).validate_graph()
        assert _verdicts(col_report) == _verdicts(dict_report)
        assert col_report.typing == dict_report.typing

    def test_revalidate_parity(self):
        workload = generate_person_workload(num_people=8, seed=7)
        columnar = ColumnarGraph(workload.graph, segment_size=16)
        validators = [Validator(workload.graph, workload.schema),
                      Validator(columnar, workload.schema)]
        for validator in validators:
            validator.validate_graph()
        victim = workload.valid_nodes[0]
        mutation = Triple(victim, FOAF.age, Literal(999))
        reports = []
        for graph, validator in ((workload.graph, validators[0]),
                                 (columnar, validators[1])):
            graph.add(mutation)
            reports.append(validator.revalidate().report)
        assert _verdicts(reports[0]) == _verdicts(reports[1])
        assert not _verdicts(reports[0])[(victim, "Person")]

    def test_validator_store_stats_passthrough(self):
        graph = ColumnarGraph(paper_example_graph())
        validator = Validator(graph, person_schema())
        assert validator.store_stats() == graph.store_stats()
        assert validator.store_stats()["store"] == "columnar"


class TestSnapshotCodec:
    """Satellite 3: one compact codec for both stores."""

    @pytest.mark.parametrize("store", ["dict", "columnar"])
    def test_snapshot_roundtrip(self, store):
        workload = generate_person_workload(num_people=6, seed=11, store=store)
        graph = workload.graph
        snapshot = graph.snapshot()
        restored = pickle.loads(pickle.dumps(snapshot))
        assert restored.generation == snapshot.generation
        for node in graph.nodes():
            assert restored.neighbourhood(node) == graph.neighbourhood(node)
            assert list(restored.neighbourhood_ordered(node)) \
                == list(graph.neighbourhood_ordered(node))

    def test_payload_smaller_than_naive_pickle(self):
        # the codec ships each distinct term once; re-pickling the
        # neighbourhood dict would serialise shared terms per triple.
        workload = generate_person_workload(num_people=30, seed=11)
        graph = workload.graph
        snapshot = graph.snapshot()
        compact = len(pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL))
        naive = len(pickle.dumps(
            {node: tuple(graph.neighbourhood_ordered(node))
             for node in graph.nodes()},
            pickle.HIGHEST_PROTOCOL))
        assert compact < naive

    def test_repickling_is_stable(self):
        graph = ColumnarGraph(paper_example_graph())
        snapshot = graph.snapshot()
        once = pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL)
        assert pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL) == once
        restored = pickle.loads(once)
        assert pickle.dumps(restored, pickle.HIGHEST_PROTOCOL) == once


class TestCliStoreFlag:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "people.ttl"
        path.write_text(PAPER_EXAMPLE_TURTLE, encoding="utf-8")
        return str(path)

    @pytest.fixture
    def nt_file(self, tmp_path):
        path = tmp_path / "people.nt"
        path.write_text(serialize_ntriples(paper_example_graph()),
                        encoding="utf-8")
        return str(path)

    @pytest.fixture
    def schema_file(self, tmp_path):
        path = tmp_path / "person.shex"
        path.write_text(PERSON_SCHEMA_SHEXC, encoding="utf-8")
        return str(path)

    def test_store_flags_agree(self, data_file, schema_file, capsys):
        outputs = {}
        for store in ("dict", "columnar"):
            code = main(["validate", "--data", data_file,
                         "--schema", schema_file, "--all-nodes",
                         "--store", store])
            outputs[store] = (code, capsys.readouterr().out)
        assert outputs["dict"] == outputs["columnar"]
        assert outputs["dict"][0] == 1  # :mary fails either way

    def test_columnar_ntriples_streams(self, nt_file, schema_file, capsys):
        code = main(["validate", "--data", nt_file, "--data-format", "ntriples",
                     "--schema", schema_file, "--all-nodes",
                     "--store", "columnar"])
        assert code == 1
        assert "2/3 conform" in capsys.readouterr().out

    def test_cache_stats_reports_store_counters(self, data_file, schema_file,
                                                capsys):
        main(["validate", "--data", data_file, "--schema", schema_file,
              "--all-nodes", "--store", "columnar", "--cache-stats"])
        err = capsys.readouterr().err
        assert "store-stats:" in err
        assert "store=columnar" in err
        assert "segments=" in err
        assert "index_bytes=" in err
        assert "dictionary-stats:" in err
        assert "decoded_terms=" in err

    def test_revalidate_with_columnar_store(self, data_file, schema_file,
                                            tmp_path, capsys):
        add = tmp_path / "add.ttl"
        add.write_text(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n"
            "@prefix : <http://example.org/> .\n"
            ":mary foaf:name \"Mary\" .\n", encoding="utf-8")
        code = main(["revalidate", "--data", data_file,
                     "--schema", schema_file, "--add", str(add),
                     "--store", "columnar"])
        captured = capsys.readouterr()
        assert code == 1  # mary still has two ages
        assert "revalidate:" in captured.err
