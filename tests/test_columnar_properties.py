"""Property-based tests: the columnar store is observationally the dict store.

The storage contract says verdicts — and everything they are derived from —
must be independent of the backend.  Hypothesis drives random interleaved
``add`` / ``remove`` / ``batch`` sequences over a small triple universe
against a dict-backed :class:`Graph` and a :class:`ColumnarGraph` with a tiny
segment size (so flushes, tombstones and revivals all happen constantly),
then asserts the two stores agree on every observable: triple sets,
neighbourhoods, degrees, generation deltas, ``changes_since`` and — for
random schemas — full-run and incremental validation verdicts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, XSD, ColumnarGraph, Graph, Literal, Triple
from repro.shex import Schema, Validator
from repro.shex.expressions import arc, interleave_all, optional, plus, star
from repro.shex.node_constraints import DatatypeConstraint, shape_ref, value_set

NODES = [EX[f"n{i}"] for i in range(5)]
PREDICATES = [EX.p, EX.q, EX.r]
LABELS = ["A", "B"]
OBJECTS = [Literal(1), Literal(2), Literal("x"),
           Literal("3", datatype=XSD.string)] + NODES[:3]
UNIVERSE = [Triple(subject, predicate, obj)
            for subject in NODES
            for predicate in PREDICATES
            for obj in OBJECTS]

#: tiny segments: a dozen operations already span several flushes.
SEGMENT_SIZE = 3


def constraints() -> st.SearchStrategy:
    return st.one_of(
        st.builds(lambda values: value_set(*values),
                  st.lists(st.sampled_from([1, 2, "x"]), min_size=1,
                           max_size=2, unique=True)),
        st.just(DatatypeConstraint(XSD.integer)),
        st.just(DatatypeConstraint(XSD.string)),
        st.sampled_from([shape_ref(label) for label in LABELS]),
    )


def shapes() -> st.SearchStrategy:
    def build(arcs):
        return interleave_all(*[
            modifier(arc(predicate, constraint))
            for (predicate, constraint, modifier) in arcs
        ])

    modifiers = st.sampled_from([lambda e: e, star, optional, plus])
    return st.builds(
        build,
        st.lists(st.tuples(st.sampled_from(PREDICATES), constraints(),
                           modifiers),
                 min_size=1, max_size=3),
    )


def schemas() -> st.SearchStrategy[Schema]:
    return st.builds(
        lambda a, b: Schema({"A": a, "B": b}),
        shapes(), shapes(),
    )


def operations() -> st.SearchStrategy[list]:
    edit = st.one_of(
        st.tuples(st.just("add"), st.sampled_from(UNIVERSE)),
        st.tuples(st.just("remove"), st.sampled_from(UNIVERSE)),
    )
    batched = st.tuples(st.just("batch"),
                        st.lists(edit, min_size=1, max_size=5))
    return st.lists(st.one_of(edit, batched), min_size=1, max_size=12)


def _apply(graph, ops):
    for kind, payload in ops:
        if kind == "add":
            graph.add(payload)
        elif kind == "remove":
            graph.discard(payload)
        else:
            with graph.batch():
                for inner_kind, triple in payload:
                    if inner_kind == "add":
                        graph.add(triple)
                    else:
                        graph.discard(triple)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


class TestStoreObservables:
    @settings(max_examples=60, deadline=None)
    @given(initial=st.lists(st.sampled_from(UNIVERSE), max_size=8),
           ops=operations())
    def test_stores_agree_on_every_observable(self, initial, ops):
        dict_graph = Graph(initial)
        columnar = ColumnarGraph(initial, segment_size=SEGMENT_SIZE)
        start_dict, start_col = dict_graph.generation, columnar.generation

        _apply(dict_graph, ops)
        _apply(columnar, ops)

        assert columnar.to_set() == dict_graph.to_set()
        assert len(columnar) == len(dict_graph)
        assert columnar == dict_graph and dict_graph == columnar
        assert set(columnar.nodes()) == set(dict_graph.nodes())
        assert set(columnar.all_nodes()) == set(dict_graph.all_nodes())
        for node in NODES:
            assert columnar.neighbourhood(node) == dict_graph.neighbourhood(node)
            assert list(columnar.neighbourhood_ordered(node)) \
                == list(dict_graph.neighbourhood_ordered(node))
            assert set(columnar.neighbourhood_any(node)) \
                == set(dict_graph.neighbourhood_any(node))
            assert columnar.degree(node) == dict_graph.degree(node)
            assert columnar.predicate_counts(node) \
                == dict_graph.predicate_counts(node)

        # generation bumps count effective mutations: identical across stores
        assert dict_graph.generation - start_dict \
            == columnar.generation - start_col
        assert columnar.changes_since(start_col) \
            == dict_graph.changes_since(start_dict)

    @settings(max_examples=40, deadline=None)
    @given(initial=st.lists(st.sampled_from(UNIVERSE), max_size=8),
           ops=operations())
    def test_pattern_queries_agree(self, initial, ops):
        dict_graph = Graph(initial)
        columnar = ColumnarGraph(initial, segment_size=SEGMENT_SIZE)
        _apply(dict_graph, ops)
        _apply(columnar, ops)
        for subject in NODES[:2]:
            assert set(columnar.triples(subject=subject)) \
                == set(dict_graph.triples(subject=subject))
        for predicate in PREDICATES:
            assert set(columnar.triples(predicate=predicate)) \
                == set(dict_graph.triples(predicate=predicate))
        for obj in (OBJECTS[0], NODES[0]):
            assert set(columnar.triples(obj=obj)) \
                == set(dict_graph.triples(obj=obj))
            assert set(columnar.in_edges(obj)) \
                == {(t.predicate, t.subject)
                    for t in dict_graph.triples(obj=obj)}


class TestVerdictIndependence:
    @settings(max_examples=25, deadline=None)
    @given(schema=schemas(),
           initial=st.lists(st.sampled_from(UNIVERSE), max_size=10))
    def test_full_run_verdicts_are_store_independent(self, schema, initial):
        dict_graph = Graph(initial)
        columnar = ColumnarGraph(initial, segment_size=SEGMENT_SIZE)
        dict_report = Validator(dict_graph, schema).validate_graph()
        col_report = Validator(columnar, schema).validate_graph()
        assert _verdicts(col_report) == _verdicts(dict_report)
        assert col_report.typing == dict_report.typing

    @settings(max_examples=20, deadline=None)
    @given(schema=schemas(),
           initial=st.lists(st.sampled_from(UNIVERSE), max_size=8),
           ops=operations())
    def test_revalidate_verdicts_are_store_independent(self, schema, initial,
                                                       ops):
        dict_graph = Graph(initial)
        columnar = ColumnarGraph(initial, segment_size=SEGMENT_SIZE)
        dict_validator = Validator(dict_graph, schema)
        col_validator = Validator(columnar, schema)
        dict_validator.validate_graph()
        col_validator.validate_graph()

        _apply(dict_graph, ops)
        _apply(columnar, ops)

        dict_result = dict_validator.revalidate()
        col_result = col_validator.revalidate()
        assert _verdicts(col_result.report) == _verdicts(dict_result.report)
        assert col_result.report.typing == dict_result.report.typing
