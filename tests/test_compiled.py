"""Tests for the compiled-schema precomputation layer (repro.shex.compiled)."""

from __future__ import annotations

import pickle

import pytest

from repro.rdf import EX, FOAF, XSD, Graph, Literal, Triple
from repro.shex import (
    CompiledSchema,
    CompiledShape,
    DerivativeCache,
    Schema,
    Validator,
    arc,
    shape_ref,
    star,
    value_set,
)
from repro.shex.analysis import first_predicates, neighbourhood_cardinality_bounds
from repro.shex.compiled import predicate_counts
from repro.shex.expressions import EPSILON, alternative, interleave
from repro.shex.node_constraints import PredicateSet
from repro.shex.partition import partition_reference_graph
from repro.workloads import (
    generate_community_workload,
    generate_person_workload,
    paper_example_graph,
    person_schema,
)


def compiled_person() -> CompiledShape:
    return CompiledSchema(person_schema()).shape("Person")


# ------------------------------------------------------------------ analysis layer
class TestSoundCardinalityBounds:
    def test_single_predicate_arc_is_exactly_one(self):
        bounds = neighbourhood_cardinality_bounds(arc(EX.p, value_set(1)))
        assert bounds[EX.p].minimum == 1
        assert bounds[EX.p].maximum == 1

    def test_multi_predicate_arc_has_no_minimum(self):
        expr = arc(PredicateSet([EX.p, EX.q]), value_set(1))
        bounds = neighbourhood_cardinality_bounds(expr)
        # the arc consumes one p-OR-q triple: neither predicate individually
        # is required, each can appear at most once
        assert bounds[EX.p].minimum == 0 and bounds[EX.p].maximum == 1
        assert bounds[EX.q].minimum == 0 and bounds[EX.q].maximum == 1

    def test_interleave_adds_and_star_unbounds(self):
        expr = interleave(arc(EX.p, value_set(1)), star(arc(EX.p, value_set(2))))
        bounds = neighbourhood_cardinality_bounds(expr)
        assert bounds[EX.p].minimum == 1
        assert bounds[EX.p].maximum is None

    def test_alternative_takes_min_and_max_across_branches(self):
        expr = alternative(
            interleave(arc(EX.p, value_set(1)), arc(EX.p, value_set(2))),
            arc(EX.q, value_set(1)),
        )
        bounds = neighbourhood_cardinality_bounds(expr)
        assert bounds[EX.p].minimum == 0 and bounds[EX.p].maximum == 2
        assert bounds[EX.q].minimum == 0 and bounds[EX.q].maximum == 1

    def test_wildcard_arc_voids_maxima(self):
        expr = interleave(arc(EX.p, value_set(1)),
                          arc(PredicateSet(any_predicate=True), None))
        bounds = neighbourhood_cardinality_bounds(expr)
        # the wildcard could absorb a second p-triple, so no finite max
        assert bounds[EX.p].minimum == 1
        assert bounds[EX.p].maximum is None

    def test_stem_arc_voids_maxima_for_covered_predicates(self):
        expr = interleave(
            arc(EX.p, value_set(1)),
            arc(PredicateSet(stem="http://example.org/"), None),
        )
        bounds = neighbourhood_cardinality_bounds(expr)
        assert bounds[EX.p].maximum is None


class TestFirstPredicates:
    def test_arc_and_star(self):
        exact, open_ = first_predicates(star(arc(EX.p, value_set(1))))
        assert exact == frozenset([EX.p]) and not open_

    def test_union_over_interleave_and_alternative(self):
        expr = interleave(arc(EX.p, value_set(1)),
                          alternative(arc(EX.q, value_set(1)), EPSILON))
        exact, open_ = first_predicates(expr)
        assert exact == frozenset([EX.p, EX.q]) and not open_

    def test_stem_arc_makes_the_set_open(self):
        _, open_ = first_predicates(arc(PredicateSet(stem="http://x/"), None))
        assert open_


# -------------------------------------------------------------- per-label compilation
class TestCompiledShape:
    def test_person_tables(self):
        shape = compiled_person()
        assert not shape.nullable
        assert shape.first_exact == frozenset([FOAF.age, FOAF.name, FOAF.knows])
        assert dict(shape.required) == {FOAF.age: 1, FOAF.name: 1}
        assert shape.max_counts == {FOAF.age: 1}
        assert shape.allowed_exact == frozenset([FOAF.age, FOAF.name, FOAF.knows])
        assert not shape.allows_any and shape.allowed_stems == ()
        assert shape.has_references
        assert len(shape.atoms) == 3

    def test_reference_arcs_are_never_screened(self):
        shape = compiled_person()
        # age and name have trivially decidable datatype constraints, knows
        # resolves through the typing context and must stay unscreened
        assert set(shape.screens) == {FOAF.age, FOAF.name}

    def test_recursive_label_compiles(self):
        schema = Schema.single("Loop", star(arc(EX.next, shape_ref("Loop"))))
        shape = CompiledSchema(schema).shape("Loop")
        assert shape.nullable and shape.has_references
        assert shape.first_exact == frozenset([EX.next])
        assert shape.required == ()

    def test_nullable_shape_accepts_empty_neighbourhood(self):
        schema = Schema.single("S", star(arc(EX.p, value_set(1))))
        decision = CompiledSchema(schema).prefilter("S", frozenset())
        assert decision is not None and decision.matched

    def test_non_nullable_shape_rejects_empty_neighbourhood(self):
        decision = compiled_person().prefilter(frozenset())
        assert decision is not None and not decision.matched

    def test_wildcard_constraint_disables_the_screen(self):
        schema = Schema.single("S", arc(EX.p))  # object is the wildcard "."
        shape = CompiledSchema(schema).shape("S")
        assert shape.screens == {}


class TestPrefilterDecisions:
    def test_closed_world_reject(self):
        shape = compiled_person()
        triples = frozenset([Triple(EX.n, EX.unrelated, Literal(1))])
        decision = shape.prefilter(triples)
        assert decision is not None and not decision.matched

    def test_cardinality_reject_on_duplicate_age(self):
        graph = paper_example_graph()
        decision = compiled_person().prefilter(graph.neighbourhood(EX.mary))
        assert decision is not None and not decision.matched
        assert "age" in decision.reason

    def test_required_reject_on_missing_name(self):
        triples = frozenset([Triple(EX.n, FOAF.age, Literal(30))])
        decision = compiled_person().prefilter(triples)
        assert decision is not None and not decision.matched

    def test_value_screen_reject_on_string_age(self):
        triples = frozenset([
            Triple(EX.n, FOAF.age, Literal("thirty", datatype=XSD.string)),
            Triple(EX.n, FOAF.name, Literal("N")),
        ])
        decision = compiled_person().prefilter(triples)
        assert decision is not None and not decision.matched

    def test_plausible_neighbourhood_is_unknown(self):
        graph = paper_example_graph()
        assert compiled_person().prefilter(graph.neighbourhood(EX.john)) is None
        assert compiled_person().prefilter(graph.neighbourhood(EX.bob)) is None

    def test_reject_decisions_are_memoised(self):
        shape = compiled_person()
        triples = frozenset([Triple(EX.n, EX.unrelated, Literal(1))])
        first = shape.prefilter(triples)
        second = shape.prefilter(triples)
        assert first is second

    def test_predicate_counts(self):
        graph = paper_example_graph()
        counts = predicate_counts(graph.neighbourhood(EX.mary))
        assert counts == {FOAF.age: 2}


# ----------------------------------------------------------------- schema-wide tables
class TestCompiledSchema:
    def test_atom_index_candidates(self):
        compiled = CompiledSchema(person_schema())
        candidates = compiled.candidate_atoms(FOAF.age)
        assert len(candidates) == 1
        ((predicate_set, _constraint),) = candidates
        assert predicate_set.matches(FOAF.age)
        assert compiled.candidate_atoms(EX.unrelated) == frozenset()

    def test_atom_tables_match_the_cache_walk_order(self):
        schema = person_schema()
        compiled = CompiledSchema(schema)
        cache = DerivativeCache()
        for label, expr in schema.items():
            assert compiled.atom_tables()[expr] == cache.atoms_for(expr)

    def test_adopt_atoms_seeds_the_cache(self):
        schema = person_schema()
        compiled = CompiledSchema(schema)
        cache = DerivativeCache()
        cache.adopt_atoms(compiled.atom_tables())
        expr = schema.expression("Person")
        assert cache.atoms_for(expr) is compiled.shape("Person").atoms

    def test_pickle_roundtrip_preserves_decisions(self):
        compiled = CompiledSchema(person_schema())
        clone = pickle.loads(pickle.dumps(compiled))
        graph = paper_example_graph()
        for node in (EX.john, EX.bob, EX.mary):
            neighbourhood = graph.neighbourhood(node)
            original = compiled.prefilter("Person", neighbourhood)
            copied = clone.prefilter("Person", neighbourhood)
            if original is None:
                assert copied is None
            else:
                assert copied is not None and copied.matched == original.matched

    def test_stats_counters(self):
        stats = CompiledSchema(person_schema()).stats()
        assert stats["labels"] == 1
        assert stats["atoms"] == 3
        assert stats["screened_predicates"] == 2


# -------------------------------------------------------------------- validator wiring
class TestValidatorIntegration:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_verdicts_agree_with_no_precompile(self, jobs):
        workload = generate_community_workload(num_communities=4, seed=9)
        fast = Validator(workload.graph, workload.schema, cache=True,
                         jobs=jobs).validate_graph()
        slow = Validator(workload.graph, workload.schema, cache=True,
                         jobs=jobs, precompile=False).validate_graph()
        assert ({(e.node, str(e.label)): e.conforms for e in fast}
                == {(e.node, str(e.label)): e.conforms for e in slow})

    def test_prefilter_counters_appear_in_the_report(self):
        workload = generate_person_workload(num_people=40, seed=1)
        report = Validator(workload.graph, workload.schema).validate_graph()
        totals = report.total_stats()
        assert totals.prefilter_rejects > 0
        # every invalid node fails, prefilter or not
        for node in workload.invalid_nodes:
            entry = report.entry_for(node, "Person")
            assert entry is not None and not entry.conforms
            assert entry.reason

    def test_precompile_false_never_prefilters(self):
        workload = generate_person_workload(num_people=20, seed=2)
        validator = Validator(workload.graph, workload.schema, precompile=False)
        assert validator.compiled is None
        report = validator.validate_graph()
        totals = report.total_stats()
        assert totals.prefilter_rejects == 0 and totals.prefilter_accepts == 0

    def test_compiled_is_rebuilt_when_the_schema_changes(self):
        workload = generate_person_workload(num_people=5, seed=3)
        validator = Validator(workload.graph, workload.schema)
        first = validator.compiled
        assert first is not None and first.schema is workload.schema
        validator.schema = person_schema()
        second = validator.compiled
        assert second is not first and second.schema is validator.schema

    def test_validate_node_uses_the_prefilter(self):
        graph = paper_example_graph()
        validator = Validator(graph, person_schema())
        entry = validator.validate_node(EX.mary, "Person")
        assert not entry.conforms
        assert entry.stats.prefilter_rejects == 1
        assert entry.stats.derivative_steps == 0

    def test_ready_made_compiled_schema_is_adopted(self):
        workload = generate_person_workload(num_people=10, seed=6)
        ready = CompiledSchema(workload.schema)
        cache = DerivativeCache()
        validator = Validator(workload.graph, workload.schema,
                              cache=cache, compiled=ready)
        assert validator.compiled is ready
        # the engine's derivative cache adopted the precomputed atom tables
        expr = workload.schema.expression("Person")
        assert cache.atoms_for(expr) is ready.shape("Person").atoms
        plain = Validator(workload.graph, workload.schema, precompile=False)
        assert ({(e.node, e.conforms) for e in validator.validate_graph()}
                == {(e.node, e.conforms) for e in plain.validate_graph()})

    def test_infer_typing_matches_plain_path(self):
        workload = generate_person_workload(num_people=25, seed=4)
        fast = Validator(workload.graph, workload.schema).infer_typing()
        slow = Validator(workload.graph, workload.schema,
                         precompile=False).infer_typing()
        assert fast.to_dict() == slow.to_dict()


class TestPartitionTightening:
    def test_statically_decided_targets_need_no_edges(self):
        graph = Graph()
        graph.add(Triple(EX.a, FOAF.age, Literal(30)))
        graph.add(Triple(EX.a, FOAF.name, Literal("A")))
        graph.add(Triple(EX.a, FOAF.knows, EX.ghost))  # ghost: empty, rejectable
        schema = person_schema()
        plain = partition_reference_graph(graph, schema)
        tightened = partition_reference_graph(graph, schema,
                                              compiled=CompiledSchema(schema))
        assert plain.stats()["edges"] == 1
        assert tightened.stats()["edges"] == 0
        # the target stays demanded (it must remain in worker snapshots)
        assert EX.ghost in tightened.demanded

    def test_undecidable_targets_keep_their_edges(self):
        workload = generate_community_workload(num_communities=2, seed=1)
        schema = workload.schema
        plain = partition_reference_graph(workload.graph, schema)
        tightened = partition_reference_graph(workload.graph, schema,
                                              compiled=CompiledSchema(schema))
        # ring members are plausible Persons: no edge may be dropped there
        assert tightened.stats()["edges"] == plain.stats()["edges"]


class TestCliEscapeHatch:
    def test_no_precompile_flag_runs_and_agrees(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import PAPER_EXAMPLE_TURTLE, PERSON_SCHEMA_SHEXC

        data = tmp_path / "data.ttl"
        data.write_text(PAPER_EXAMPLE_TURTLE, encoding="utf-8")
        schema = tmp_path / "schema.shex"
        schema.write_text(PERSON_SCHEMA_SHEXC, encoding="utf-8")
        base = ["validate", "--data", str(data), "--schema", str(schema),
                "--all-nodes", "--format", "csv"]
        code_fast = main(base)
        fast_out = capsys.readouterr().out
        code_slow = main(base + ["--no-precompile"])
        slow_out = capsys.readouterr().out
        assert code_fast == code_slow == 1  # mary does not conform
        # verdicts agree; failure *reasons* may legitimately differ (the
        # prefilter explains rejects statically, the engine dynamically)
        fast_verdicts = [line.split(",")[:3] for line in fast_out.splitlines()]
        slow_verdicts = [line.split(",")[:3] for line in slow_out.splitlines()]
        assert fast_verdicts == slow_verdicts

    def test_cache_stats_include_prefilter_counters(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import PAPER_EXAMPLE_TURTLE, PERSON_SCHEMA_SHEXC

        data = tmp_path / "data.ttl"
        data.write_text(PAPER_EXAMPLE_TURTLE, encoding="utf-8")
        schema = tmp_path / "schema.shex"
        schema.write_text(PERSON_SCHEMA_SHEXC, encoding="utf-8")
        main(["validate", "--data", str(data), "--schema", str(schema),
              "--all-nodes", "--cache-stats"])
        captured = capsys.readouterr()
        assert "prefilter-stats:" in captured.err
        assert "rejects=" in captured.err
