"""Unit tests for XSD datatype validation and value mapping."""

from datetime import date, datetime, time
from decimal import Decimal

import pytest

from repro.rdf import IRI, Literal, RDF, XSD
from repro.rdf.datatypes import (
    canonical_lexical,
    datatype_matches,
    derived_numeric_types,
    is_valid_lexical,
    registered_datatypes,
    to_python_value,
)


class TestLexicalValidation:
    @pytest.mark.parametrize("lexical", ["0", "42", "-7", "+13", "00012"])
    def test_valid_integers(self, lexical):
        assert is_valid_lexical(lexical, XSD.integer)

    @pytest.mark.parametrize("lexical", ["", "4.2", "abc", "1e3", "--2", "4 2"])
    def test_invalid_integers(self, lexical):
        assert not is_valid_lexical(lexical, XSD.integer)

    @pytest.mark.parametrize("lexical", ["1.5", "-0.25", ".5", "3.", "+2.0"])
    def test_valid_decimals(self, lexical):
        assert is_valid_lexical(lexical, XSD.decimal)

    @pytest.mark.parametrize("lexical", ["1,5", "abc", "1.2.3"])
    def test_invalid_decimals(self, lexical):
        assert not is_valid_lexical(lexical, XSD.decimal)

    @pytest.mark.parametrize("lexical", ["1.5e3", "-2E-4", "INF", "-INF", "NaN", "42"])
    def test_valid_doubles(self, lexical):
        assert is_valid_lexical(lexical, XSD.double)

    @pytest.mark.parametrize("lexical", ["true", "false", "0", "1"])
    def test_valid_booleans(self, lexical):
        assert is_valid_lexical(lexical, XSD.boolean)

    @pytest.mark.parametrize("lexical", ["True", "yes", "2", ""])
    def test_invalid_booleans(self, lexical):
        assert not is_valid_lexical(lexical, XSD.boolean)

    @pytest.mark.parametrize("lexical", ["2021-01-31", "1999-12-01", "2021-01-31Z"])
    def test_valid_dates(self, lexical):
        assert is_valid_lexical(lexical, XSD.date)

    @pytest.mark.parametrize("lexical", ["2021-13-01", "2021-02-30", "01-01-2021", "2021/01/01"])
    def test_invalid_dates(self, lexical):
        assert not is_valid_lexical(lexical, XSD.date)

    @pytest.mark.parametrize("lexical", ["2021-01-31T10:20:30", "2021-01-31T10:20:30.5Z",
                                         "2021-01-31T10:20:30+02:00"])
    def test_valid_datetimes(self, lexical):
        assert is_valid_lexical(lexical, XSD.dateTime)

    @pytest.mark.parametrize("lexical", ["2021-01-31", "2021-01-31T25:00:00"])
    def test_invalid_datetimes(self, lexical):
        assert not is_valid_lexical(lexical, XSD.dateTime)

    @pytest.mark.parametrize("lexical", ["10:20:30", "23:59:59.999", "00:00:00Z"])
    def test_valid_times(self, lexical):
        assert is_valid_lexical(lexical, XSD.time)

    def test_bounded_integer_types(self):
        assert is_valid_lexical("2147483647", XSD.int)
        assert not is_valid_lexical("2147483648", XSD.int)
        assert is_valid_lexical("255", XSD.byte) is False
        assert is_valid_lexical("127", XSD.byte)

    def test_sign_constrained_integer_types(self):
        assert is_valid_lexical("0", XSD.nonNegativeInteger)
        assert not is_valid_lexical("-1", XSD.nonNegativeInteger)
        assert is_valid_lexical("1", XSD.positiveInteger)
        assert not is_valid_lexical("0", XSD.positiveInteger)
        assert is_valid_lexical("-5", XSD.negativeInteger)
        assert not is_valid_lexical("5", XSD.negativeInteger)

    def test_unknown_datatype_is_permissive(self):
        custom = IRI("http://example.org/mytype")
        assert is_valid_lexical("anything at all", custom)

    def test_language_datatype(self):
        assert is_valid_lexical("en-GB", XSD.language)
        assert not is_valid_lexical("not a language tag", XSD.language)

    def test_duration(self):
        assert is_valid_lexical("P1Y2M3DT4H5M6S", XSD.duration)
        assert is_valid_lexical("PT5M", XSD.duration)
        assert not is_valid_lexical("P", XSD.duration)


class TestPythonValues:
    def test_integer(self):
        assert to_python_value(Literal("42", datatype=XSD.integer)) == 42

    def test_decimal(self):
        value = to_python_value(Literal("3.14", datatype=XSD.decimal))
        assert value == Decimal("3.14")

    def test_double_special_values(self):
        assert to_python_value(Literal("INF", datatype=XSD.double)) == float("inf")

    def test_boolean(self):
        assert to_python_value(Literal("true", datatype=XSD.boolean)) is True
        assert to_python_value(Literal("0", datatype=XSD.boolean)) is False

    def test_date(self):
        assert to_python_value(Literal("2021-05-06", datatype=XSD.date)) == date(2021, 5, 6)

    def test_datetime(self):
        value = to_python_value(Literal("2021-05-06T07:08:09", datatype=XSD.dateTime))
        assert value == datetime(2021, 5, 6, 7, 8, 9)

    def test_time(self):
        assert to_python_value(Literal("07:08:09", datatype=XSD.time)) == time(7, 8, 9)

    def test_invalid_lexical_falls_back_to_string(self):
        assert to_python_value(Literal("not a number", datatype=XSD.integer)) == "not a number"

    def test_unknown_datatype_falls_back_to_string(self):
        literal = Literal("raw", datatype=IRI("http://example.org/custom"))
        assert to_python_value(literal) == "raw"


class TestCanonicalLexical:
    def test_numeric_literals_are_canonicalised(self):
        assert canonical_lexical(Literal("042", datatype=XSD.integer)) == "42"
        assert canonical_lexical(Literal("+7", datatype=XSD.integer)) == "7"

    def test_non_numeric_literals_keep_lexical_form(self):
        assert canonical_lexical(Literal("hello")) == "hello"
        assert canonical_lexical(Literal("2021-01-01", datatype=XSD.date)) == "2021-01-01"


class TestDatatypeMatches:
    def test_exact_match(self):
        assert datatype_matches(Literal(42), XSD.integer)
        assert datatype_matches(Literal("text"), XSD.string)

    def test_derived_integer_types_satisfy_integer(self):
        assert datatype_matches(Literal("5", datatype=XSD.int), XSD.integer)
        assert datatype_matches(Literal("5", datatype=XSD.nonNegativeInteger), XSD.integer)

    def test_integer_satisfies_decimal(self):
        assert datatype_matches(Literal("5", datatype=XSD.integer), XSD.decimal)

    def test_string_does_not_satisfy_integer(self):
        assert not datatype_matches(Literal("5"), XSD.integer)

    def test_invalid_lexical_never_matches(self):
        assert not datatype_matches(Literal("five", datatype=XSD.integer), XSD.integer)

    def test_langstring_does_not_satisfy_plain_string(self):
        assert not datatype_matches(Literal("chat", lang="fr"), XSD.string)

    def test_integer_does_not_satisfy_string(self):
        assert not datatype_matches(Literal(5), XSD.string)


class TestRegistry:
    def test_registry_is_a_copy(self):
        registry = registered_datatypes()
        registry.clear()
        assert registered_datatypes()  # original is untouched

    def test_integer_family_is_registered(self):
        family = derived_numeric_types()
        assert XSD.integer.value in family
        assert XSD.int.value in family
        assert XSD.string.value not in family

    def test_langstring_registered(self):
        assert RDF.langString.value in registered_datatypes()
