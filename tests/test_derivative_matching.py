"""Tests for the DerivativeEngine: options, statistics and failure reporting."""

import pytest

from repro.rdf import EX, Literal, Triple
from repro.shex import DerivativeEngine, ShapeTyping, arc, interleave, plus, value_set
from repro.workloads import (
    balanced_alternation_case,
    cardinality_case,
    interleave_width_case,
    mixed_portal_case,
    paper_interleave_case,
    shuffled,
    star_case,
)

NODE = EX.subject


@pytest.fixture
def paper_case():
    return paper_interleave_case(extra_b_arcs=4)


class TestEngineOptions:
    def test_default_options(self):
        engine = DerivativeEngine()
        assert engine.simplify and engine.order_by_predicate and engine.memoize

    def test_simplification_off_is_still_correct(self, paper_case):
        for simplify in (True, False):
            engine = DerivativeEngine(simplify=simplify)
            result = engine.match_neighbourhood(paper_case.expression, paper_case.triples)
            assert result.matched == paper_case.expected

    def test_simplification_off_grows_expressions(self, paper_case):
        with_simplification = DerivativeEngine(simplify=True).match_neighbourhood(
            paper_case.expression, paper_case.triples)
        without_simplification = DerivativeEngine(simplify=False).match_neighbourhood(
            paper_case.expression, paper_case.triples)
        assert without_simplification.stats.max_expression_size > \
            with_simplification.stats.max_expression_size

    def test_memoization_off_is_still_correct(self, paper_case):
        engine = DerivativeEngine(memoize=False)
        assert engine.match_neighbourhood(paper_case.expression,
                                          paper_case.triples).matched

    def test_unordered_consumption_is_still_correct(self):
        case = interleave_width_case(width=5)
        engine = DerivativeEngine(order_by_predicate=False)
        assert engine.match_neighbourhood(case.expression, case.triples).matched

    def test_order_triples_respects_option(self):
        case = paper_interleave_case(extra_b_arcs=3)
        ordered = DerivativeEngine(order_by_predicate=True).order_triples(case.triples)
        assert ordered == sorted(case.triples, key=lambda triple: triple.sort_key())

    def test_engine_is_callable(self, paper_case):
        engine = DerivativeEngine()
        assert engine(paper_case.expression, paper_case.triples).matched


class TestStatistics:
    def test_derivative_steps_scale_linearly_with_triples(self):
        small = star_case(5)
        large = star_case(50)
        engine = DerivativeEngine()
        small_steps = engine.match_neighbourhood(small.expression, small.triples).stats
        large_steps = engine.match_neighbourhood(large.expression, large.triples).stats
        assert large_steps.derivative_steps == pytest.approx(
            10 * small_steps.derivative_steps, rel=0.2)

    def test_no_decompositions_are_ever_counted(self, paper_case):
        result = DerivativeEngine().match_neighbourhood(paper_case.expression,
                                                        paper_case.triples)
        assert result.stats.decompositions == 0

    def test_max_expression_size_tracked(self):
        case = balanced_alternation_case(pairs=4)
        result = DerivativeEngine().match_neighbourhood(case.expression, case.triples)
        assert result.stats.max_expression_size >= 1

    def test_stats_merge_and_dict(self):
        case = star_case(3)
        result = DerivativeEngine().match_neighbourhood(case.expression, case.triples)
        merged = result.stats.merge(result.stats)
        as_dict = merged.as_dict()
        assert as_dict["derivative_steps"] == merged.derivative_steps
        assert set(as_dict) == {
            "derivative_steps", "decompositions", "rule_applications",
            "arc_checks", "reference_checks", "max_expression_size",
            "prefilter_accepts", "prefilter_rejects",
            "signature_hits", "signature_misses", "signature_dedupes",
            "signature_time", "prefilter_time", "dispatch_time",
            "backtrack_time", "cache_time",
        }


class TestFailureReporting:
    def test_failure_blames_the_offending_triple(self):
        case = paper_interleave_case(extra_b_arcs=2, matching=False)
        result = DerivativeEngine().match_neighbourhood(case.expression, case.triples)
        assert not result.matched
        assert "no continuation" in result.reason

    def test_failure_on_missing_required_arcs(self):
        expression = interleave(arc(EX.a, value_set(1)), plus(arc(EX.b, value_set(1))))
        triples = frozenset({Triple(NODE, EX.a, Literal(1))})
        result = DerivativeEngine().match_neighbourhood(expression, triples)
        assert not result.matched
        assert "not nullable" in result.reason

    def test_success_has_empty_reason(self):
        case = star_case(3)
        result = DerivativeEngine().match_neighbourhood(case.expression, case.triples)
        assert result.matched and result.reason == ""

    def test_result_typing_defaults_to_empty_without_context(self):
        case = star_case(3)
        result = DerivativeEngine().match_neighbourhood(case.expression, case.triples)
        assert result.typing == ShapeTyping.empty()


class TestWorkloadCases:
    """Every workload generator produces cases both engines solve correctly."""

    @pytest.mark.parametrize("case_factory", [
        lambda: star_case(8),
        lambda: star_case(8, matching=False),
        lambda: paper_interleave_case(5),
        lambda: paper_interleave_case(5, matching=False),
        lambda: interleave_width_case(4),
        lambda: interleave_width_case(4, matching=False),
        lambda: interleave_width_case(3, arcs_per_branch=2),
        lambda: balanced_alternation_case(3),
        lambda: balanced_alternation_case(3, matching=False),
        lambda: cardinality_case(1, 3, 2),
        lambda: cardinality_case(2, 4, 1),
        lambda: cardinality_case(0, 2, 3),
        lambda: mixed_portal_case(6),
        lambda: mixed_portal_case(6, matching=False),
    ])
    def test_derivative_engine_matches_ground_truth(self, case_factory):
        case = case_factory()
        result = DerivativeEngine().match_neighbourhood(case.expression, case.triples)
        assert result.matched == case.expected, case.name

    def test_shuffled_order_preserves_verdict(self):
        case = interleave_width_case(5)
        for seed in range(5):
            triples = shuffled(case, seed=seed)
            from repro.shex import derivative_graph, nullable

            assert nullable(derivative_graph(case.expression, triples)) == case.expected
