"""Tests for nullability and the derivative rules of Section 6."""

import pytest

from repro.rdf import EX, Literal, Triple, XSD
from repro.shex import (
    EMPTY,
    EPSILON,
    And,
    Arc,
    Or,
    PredicateSet,
    ShapeRef,
    arc,
    datatype,
    derivative,
    derivative_graph,
    derivative_trace,
    expression_size,
    interleave,
    matches,
    nullable,
    optional,
    plus,
    star,
    value_set,
)
from repro.shex.typing import ShapeLabel

NODE = EX.n
A1 = Triple(NODE, EX.a, Literal(1))
A2 = Triple(NODE, EX.a, Literal(2))
B1 = Triple(NODE, EX.b, Literal(1))
B2 = Triple(NODE, EX.b, Literal(2))


@pytest.fixture
def paper_expression():
    """The running example: a→1 ‖ (b→{1,2})*."""
    return interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))


class TestNullable:
    """The ν table of Section 6."""

    def test_empty_is_not_nullable(self):
        assert nullable(EMPTY) is False

    def test_epsilon_is_nullable(self):
        assert nullable(EPSILON) is True

    def test_arc_is_not_nullable(self):
        assert nullable(arc(EX.a, value_set(1))) is False

    def test_star_is_nullable(self):
        assert nullable(star(arc(EX.a, value_set(1)))) is True

    def test_and_requires_both(self):
        nullable_expr = star(arc(EX.a, value_set(1)))
        non_nullable = arc(EX.b, value_set(1))
        assert nullable(And(nullable_expr, nullable_expr)) is True
        assert nullable(And(nullable_expr, non_nullable)) is False
        assert nullable(And(non_nullable, nullable_expr)) is False

    def test_or_requires_either(self):
        nullable_expr = EPSILON
        non_nullable = arc(EX.b, value_set(1))
        assert nullable(Or(non_nullable, nullable_expr)) is True
        assert nullable(Or(non_nullable, non_nullable)) is False

    def test_optional_and_plus(self):
        assert nullable(optional(arc(EX.a, value_set(1)))) is True
        assert nullable(plus(arc(EX.a, value_set(1)))) is False

    def test_unknown_expression_type_rejected(self):
        with pytest.raises(TypeError):
            nullable("not an expression")


class TestDerivativeRules:
    def test_derivative_of_empty_and_epsilon(self):
        assert derivative(EMPTY, A1) is EMPTY
        assert derivative(EPSILON, A1) is EMPTY

    def test_derivative_of_matching_arc_is_epsilon(self):
        assert derivative(arc(EX.a, value_set(1)), A1) is EPSILON

    def test_derivative_of_arc_with_wrong_predicate(self):
        assert derivative(arc(EX.a, value_set(1)), B1) is EMPTY

    def test_derivative_of_arc_with_wrong_value(self):
        assert derivative(arc(EX.a, value_set(1)), A2) is EMPTY

    def test_derivative_of_datatype_arc(self):
        expression = arc(EX.a, datatype(XSD.integer))
        assert derivative(expression, A1) is EPSILON
        text_triple = Triple(NODE, EX.a, Literal("not a number"))
        assert derivative(expression, text_triple) is EMPTY

    def test_derivative_of_star(self):
        """∂t(e*) = ∂t(e) ‖ e*."""
        starred = star(arc(EX.b, value_set(1, 2)))
        result = derivative(starred, B1)
        assert result == starred  # ε ‖ e* simplifies to e*
        assert derivative(starred, A1) is EMPTY  # ∅ ‖ e* simplifies to ∅

    def test_derivative_of_or(self):
        expression = arc(EX.a, value_set(1)) | arc(EX.b, value_set(1))
        assert derivative(expression, A1) is EPSILON
        assert derivative(expression, B1) is EPSILON
        assert derivative(expression, A2) is EMPTY

    def test_example_9(self):
        """∂⟨n,a,1⟩(a→1 ‖ (b→{1,2})*) = (b→{1,2})*."""
        expression = interleave(arc(EX.a, value_set(1)),
                                star(arc(EX.b, value_set(1, 2))))
        result = derivative(expression, A1)
        assert result == star(arc(EX.b, value_set(1, 2)))

    def test_example_10_growth(self):
        """The derivative of (a→{1,2} | b→{1,2})* grows after consuming an arc."""
        expression = star(arc(EX.a, value_set(1, 2)) | arc(EX.b, value_set(1, 2)))
        result = derivative(expression, A1)
        # the expected form is b→{1,2} ‖ (a→{1,2} | b→{1,2})* — wait, no:
        # ∂a(e*) = ∂a(a|b) ‖ e* = ε ‖ e* = e*; growth appears for expressions
        # that owe a matching arc, e.g. (a→V ‖ b→V)*:
        owing = star(interleave(arc(EX.a, value_set(1, 2)), arc(EX.b, value_set(1, 2))))
        grown = derivative(owing, A1)
        assert expression_size(grown) > expression_size(owing)
        assert result == expression  # the alternative-star stays the same size

    def test_derivative_without_simplification_grows(self):
        expression = interleave(arc(EX.a, value_set(1)),
                                star(arc(EX.b, value_set(1, 2))))
        simplified = derivative(expression, A1, simplify=True)
        raw = derivative(expression, A1, simplify=False)
        assert expression_size(raw) > expression_size(simplified)

    def test_shape_reference_requires_context(self):
        expression = Arc(PredicateSet.single(EX.knows), ShapeRef(ShapeLabel("Person")))
        with pytest.raises(TypeError):
            derivative(expression, Triple(NODE, EX.knows, EX.other))

    def test_unknown_expression_type_rejected(self):
        with pytest.raises(TypeError):
            derivative("not an expression", A1)


class TestGraphDerivative:
    def test_empty_graph_leaves_expression_unchanged(self, paper_expression):
        assert derivative_graph(paper_expression, []) == paper_expression

    def test_consuming_all_triples(self, paper_expression):
        result = derivative_graph(paper_expression, [A1, B1, B2])
        assert nullable(result)

    def test_early_absorption_on_empty(self, paper_expression):
        # once the derivative hits ∅ the remaining triples cannot recover
        result = derivative_graph(paper_expression, [A1, A2, B1])
        assert result is EMPTY

    def test_order_does_not_change_the_verdict(self, paper_expression):
        orders = [
            [A1, B1, B2],
            [B2, A1, B1],
            [B1, B2, A1],
        ]
        verdicts = {nullable(derivative_graph(paper_expression, order))
                    for order in orders}
        assert verdicts == {True}


class TestMatching:
    def test_example_11_accepts(self, paper_expression):
        assert matches(paper_expression, [A1, B1, B2]) is True

    def test_example_12_rejects(self, paper_expression):
        assert matches(paper_expression, [A1, A2, B1]) is False

    def test_missing_mandatory_arc_rejects(self, paper_expression):
        assert matches(paper_expression, [B1, B2]) is False

    def test_empty_graph_against_star_accepts(self):
        assert matches(star(arc(EX.b, value_set(1))), []) is True

    def test_empty_graph_against_arc_rejects(self):
        assert matches(arc(EX.b, value_set(1)), []) is False

    def test_trace_reproduces_example_11(self, paper_expression):
        steps = derivative_trace(paper_expression, [A1, B1, B2])
        assert len(steps) == 3
        assert steps[0][1] == star(arc(EX.b, value_set(1, 2)))
        assert steps[1][1] == star(arc(EX.b, value_set(1, 2)))
        assert nullable(steps[2][1])

    def test_trace_reproduces_example_12(self, paper_expression):
        steps = derivative_trace(paper_expression, [A1, A2, B1])
        assert steps[1][1] is EMPTY
        assert steps[2][1] is EMPTY
