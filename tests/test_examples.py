"""Smoke tests: every example script runs end to end without errors.

The examples double as documentation; if one of them breaks, the README's
promises break with it.  The scripts are imported from the ``examples/``
directory and their ``main()`` functions executed with output captured.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without polluting sys.path."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "derivative_traces",
    "recursive_shapes",
    "linked_data_portal",
    "sparql_baseline",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"example {name} produced no output"


def test_quickstart_reports_the_paper_verdicts(capsys):
    load_example("quickstart").main()
    output = capsys.readouterr().out
    assert "john" in output and "bob" in output
    assert "does NOT conform" in output  # :mary

def test_engine_comparison_with_reduced_budget(capsys):
    module = load_example("engine_comparison")
    # shrink the budget so the exponential rows stop early in CI
    module.BACKTRACKING_BUDGET = 20_000
    module.main()
    output = capsys.readouterr().out
    assert "Accepting neighbourhoods" in output
    assert "> budget" in output  # the exponential rows were cut off


def test_examples_directory_is_complete():
    present = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "derivative_traces", "recursive_shapes",
            "linked_data_portal", "sparql_baseline", "engine_comparison"} <= present
