"""Unit tests for the regular shape expression algebra and its simplification rules."""

import pytest

from repro.rdf import EX, Literal
from repro.shex import (
    EMPTY,
    EPSILON,
    And,
    Arc,
    Empty,
    EmptyTriples,
    Or,
    PredicateSet,
    ShapeRef,
    Star,
    ValueSet,
    alternative,
    alternative_all,
    arc,
    expression_depth,
    expression_size,
    interleave,
    interleave_all,
    iter_subexpressions,
    optional,
    plus,
    referenced_labels,
    repeat,
    star,
    value_set,
)
from repro.shex.typing import ShapeLabel


@pytest.fixture
def simple_arc():
    return arc(EX.a, value_set(1))


@pytest.fixture
def other_arc():
    return arc(EX.b, value_set(1, 2))


class TestSingletons:
    def test_empty_is_a_singleton(self):
        assert Empty() is EMPTY
        assert Empty() == EMPTY

    def test_epsilon_is_a_singleton(self):
        assert EmptyTriples() is EPSILON

    def test_empty_and_epsilon_differ(self):
        assert EMPTY != EPSILON

    def test_rendering(self):
        assert EMPTY.to_str() == "∅"
        assert EPSILON.to_str() == "ε"


class TestArcConstruction:
    def test_arc_helper_wraps_iri_predicate(self, simple_arc):
        assert isinstance(simple_arc.predicate, PredicateSet)
        assert simple_arc.predicate.matches(EX.a)
        assert not simple_arc.predicate.matches(EX.b)

    def test_arc_helper_wraps_python_values(self):
        expression = arc(EX.a, 5)
        assert isinstance(expression.object, ValueSet)
        assert expression.object.matches(Literal(5))

    def test_arc_helper_wildcard_object(self):
        expression = arc(EX.a)
        assert expression.object.matches(Literal("anything"))
        assert expression.object.matches(EX.b)

    def test_arc_requires_proper_types(self):
        with pytest.raises(TypeError):
            Arc("not a predicate set", ValueSet([Literal(1)]))
        with pytest.raises(TypeError):
            Arc(PredicateSet.single(EX.a), "not a constraint")

    def test_arc_is_reference_flag(self):
        plain = arc(EX.a, value_set(1))
        reference = Arc(PredicateSet.single(EX.a), ShapeRef(ShapeLabel("S")))
        assert not plain.is_reference
        assert reference.is_reference

    def test_arc_equality_and_hash(self, simple_arc):
        assert simple_arc == arc(EX.a, value_set(1))
        assert hash(simple_arc) == hash(arc(EX.a, value_set(1)))
        assert simple_arc != arc(EX.a, value_set(2))

    def test_arc_is_immutable(self, simple_arc):
        with pytest.raises(AttributeError):
            simple_arc.predicate = None


class TestSimplificationRules:
    """The rules listed at the end of Section 4."""

    def test_empty_is_identity_of_or(self, simple_arc):
        assert alternative(EMPTY, simple_arc) is simple_arc
        assert alternative(simple_arc, EMPTY) is simple_arc

    def test_empty_is_absorbing_for_and(self, simple_arc):
        assert interleave(EMPTY, simple_arc) is EMPTY
        assert interleave(simple_arc, EMPTY) is EMPTY

    def test_epsilon_is_identity_of_and(self, simple_arc):
        assert interleave(EPSILON, simple_arc) is simple_arc
        assert interleave(simple_arc, EPSILON) is simple_arc

    def test_idempotent_alternative(self, simple_arc):
        assert alternative(simple_arc, arc(EX.a, value_set(1))) == simple_arc

    def test_simplification_can_be_disabled(self, simple_arc):
        raw = interleave(EPSILON, simple_arc, simplify=False)
        assert isinstance(raw, And)
        raw_or = alternative(EMPTY, simple_arc, simplify=False)
        assert isinstance(raw_or, Or)

    def test_star_simplifications(self, simple_arc):
        assert star(EMPTY) is EPSILON
        assert star(EPSILON) is EPSILON
        starred = star(simple_arc)
        assert star(starred) is starred

    def test_operator_sugar(self, simple_arc, other_arc):
        assert isinstance(simple_arc & other_arc, And)
        assert isinstance(simple_arc | other_arc, Or)
        assert isinstance(simple_arc.star(), Star)


class TestDerivedOperators:
    def test_plus_expansion(self, simple_arc):
        """E+ = E ‖ E* (Section 4)."""
        expression = plus(simple_arc)
        assert isinstance(expression, And)
        assert expression.left == simple_arc
        assert expression == And(simple_arc, Star(simple_arc))

    def test_optional_expansion(self, simple_arc):
        """E? = E | ε (Section 4)."""
        expression = optional(simple_arc)
        assert expression == Or(simple_arc, EPSILON)

    def test_repeat_zero_zero_is_epsilon(self, simple_arc):
        assert repeat(simple_arc, 0, 0) is EPSILON

    def test_repeat_exact(self, simple_arc):
        expression = repeat(simple_arc, 2, 2)
        # two interleaved copies
        assert expression == And(simple_arc, simple_arc)

    def test_repeat_range_structure(self, simple_arc):
        expression = repeat(simple_arc, 1, 3)
        # one mandatory copy plus two optional copies
        assert expression_size(expression) > expression_size(simple_arc)
        subexpressions = list(iter_subexpressions(expression))
        assert sum(1 for sub in subexpressions if sub == simple_arc) == 3

    def test_repeat_unbounded(self, simple_arc):
        expression = repeat(simple_arc, 2, None)
        stars = [sub for sub in iter_subexpressions(expression) if isinstance(sub, Star)]
        assert len(stars) == 1

    def test_repeat_rejects_bad_bounds(self, simple_arc):
        with pytest.raises(ValueError):
            repeat(simple_arc, -1, 2)
        with pytest.raises(ValueError):
            repeat(simple_arc, 3, 2)

    def test_nary_helpers(self, simple_arc, other_arc):
        assert interleave_all() is EPSILON
        assert alternative_all() is EMPTY
        assert interleave_all(simple_arc) is simple_arc
        assert alternative_all(simple_arc, other_arc) == Or(simple_arc, other_arc)


class TestIntrospection:
    def test_expression_size_counts_nodes(self, simple_arc, other_arc):
        assert expression_size(simple_arc) == 1
        assert expression_size(And(simple_arc, other_arc)) == 3
        assert expression_size(Star(And(simple_arc, other_arc))) == 4

    def test_expression_depth(self, simple_arc, other_arc):
        assert expression_depth(simple_arc) == 1
        assert expression_depth(Star(And(simple_arc, other_arc))) == 3

    def test_iter_subexpressions_preorder(self, simple_arc, other_arc):
        expression = And(simple_arc, Star(other_arc))
        nodes = list(iter_subexpressions(expression))
        assert nodes[0] is expression
        assert simple_arc in nodes
        assert any(isinstance(node, Star) for node in nodes)

    def test_referenced_labels(self):
        expression = interleave(
            arc(EX.a, value_set(1)),
            Arc(PredicateSet.single(EX.knows), ShapeRef(ShapeLabel("Person"))),
        )
        assert referenced_labels(expression) == {ShapeLabel("Person")}

    def test_to_str_is_total(self, simple_arc, other_arc):
        expression = Or(And(simple_arc, Star(other_arc)), EPSILON)
        rendered = expression.to_str()
        assert "‖" in rendered and "|" in rendered and "*" in rendered


class TestStructuralEquality:
    def test_and_equality_is_ordered(self, simple_arc, other_arc):
        assert And(simple_arc, other_arc) == And(simple_arc, other_arc)
        assert And(simple_arc, other_arc) != And(other_arc, simple_arc)

    def test_or_equality(self, simple_arc, other_arc):
        assert Or(simple_arc, other_arc) == Or(simple_arc, other_arc)
        assert Or(simple_arc, other_arc) != Or(other_arc, simple_arc)

    def test_expressions_usable_as_dict_keys(self, simple_arc, other_arc):
        table = {And(simple_arc, other_arc): "value"}
        assert table[And(simple_arc, other_arc)] == "value"

    def test_constructors_type_check(self, simple_arc):
        with pytest.raises(TypeError):
            And(simple_arc, "not an expression")
        with pytest.raises(TypeError):
            Or("not an expression", simple_arc)
        with pytest.raises(TypeError):
            Star("not an expression")
