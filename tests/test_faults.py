"""Unit tests for the deterministic fault-injection machinery
(:mod:`repro.service.faults`): plan determinism and JSON round-trips,
occurrence-counter matching, shard scoping, and thread safety of the
injector — the properties every chaos test builds on."""

from __future__ import annotations

import json
import pickle
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(point="fleet.crash-into-the-sun")

    def test_hits_are_sorted_and_deduped(self):
        spec = FaultSpec(point="fleet.stall", hits=(3, 1, 3, 0))
        assert spec.hits == (0, 1, 3)

    def test_json_round_trip(self):
        spec = FaultSpec(point="fleet.crash-after-apply", hits=(1, 2),
                         shard=1, delay=0.25)
        assert FaultSpec.from_json(spec.to_json()) == spec
        # through an actual wire encoding (the CI artifact path)
        assert FaultSpec.from_json(json.loads(json.dumps(spec.to_json()))) \
            == spec


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="server.connection-reset"),
            FaultSpec(point="fleet.crash-before-apply", shard=0, hits=(2,)),
        ), seed=1337)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_json(json.loads(json.dumps(plan.to_json()))) \
            == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(specs=(FaultSpec(point="fleet.stall"),))

    def test_plans_are_picklable(self):
        # plans ship to shard workers through multiprocessing spawn args
        plan = FaultPlan.random(5, shards=3)
        assert pickle.loads(pickle.dumps(plan)) == plan

    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_is_deterministic_per_seed(self, seed):
        first = FaultPlan.random(seed, shards=2)
        second = FaultPlan.random(seed, shards=2)
        assert first == second
        assert first.seed == seed
        for spec in first.specs:
            assert spec.point in FAULT_POINTS
            if spec.point.startswith("fleet."):
                assert spec.shard in (0, 1)
            else:
                assert spec.shard is None

    def test_different_seeds_eventually_differ(self):
        plans = {FaultPlan.random(seed, rate=1.0).specs
                 for seed in range(20)}
        assert len(plans) > 1


class TestFaultInjector:
    def test_fires_only_on_matching_occurrence(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.stall", hits=(1,), delay=0.5),))
        injector = FaultInjector(plan)
        assert injector.fire("fleet.stall") is None           # occurrence 0
        spec = injector.fire("fleet.stall")                   # occurrence 1
        assert spec is not None and spec.delay == 0.5
        assert injector.fire("fleet.stall") is None           # occurrence 2
        assert injector.counts() == {"fleet.stall": 3}
        assert injector.fired == [
            {"point": "fleet.stall", "occurrence": 1, "shard": None}]

    def test_points_count_independently(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="client.timeout", hits=(0,)),))
        injector = FaultInjector(plan)
        assert injector.fire("client.send-then-die") is None
        assert injector.fire("client.timeout") is not None

    def test_shard_scoping(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.crash-after-apply", shard=1),))
        shard0 = FaultInjector(plan, shard=0)
        shard1 = FaultInjector(plan, shard=1)
        assert shard0.fire("fleet.crash-after-apply") is None
        assert shard1.fire("fleet.crash-after-apply") is not None

    def test_shardless_spec_matches_every_shard(self):
        plan = FaultPlan(specs=(FaultSpec(point="fleet.drop-response"),))
        for shard in (0, 1, 2):
            assert FaultInjector(plan, shard=shard) \
                .fire("fleet.drop-response") is not None

    def test_empty_injector_never_fires(self):
        injector = FaultInjector()
        for point in FAULT_POINTS:
            assert injector.fire(point) is None
        assert injector.fired == []

    def test_thread_safety_of_occurrence_counters(self):
        # the HTTP server consults one injector from many handler threads;
        # N concurrent consultations must count exactly N occurrences and
        # fire exactly the scheduled hits, whatever the interleaving.
        plan = FaultPlan(specs=(
            FaultSpec(point="server.delay-response", hits=(5, 25, 45)),))
        injector = FaultInjector(plan)
        fired = []
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(25):
                if injector.fire("server.delay-response") is not None:
                    fired.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert injector.counts() == {"server.delay-response": 200}
        assert len(fired) == 3
