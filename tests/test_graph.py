"""Unit tests for the Graph container, its indexes and the paper's graph algebra."""

import pytest

from repro.rdf import (
    BNode,
    EX,
    FOAF,
    Graph,
    Literal,
    Triple,
    decomposition_count,
    decompositions,
)
from repro.rdf.errors import GraphError
from repro.rdf.graph import NeighbourhoodView


def triple(suffix_s: str, suffix_p: str, obj) -> Triple:
    return Triple(EX[suffix_s], EX[suffix_p], obj if not isinstance(obj, (int, str)) else Literal(obj))


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph()
        assert len(graph) == 0
        assert not graph
        assert list(graph) == []

    def test_add_and_contains(self):
        graph = Graph()
        t = triple("s", "p", 1)
        graph.add(t)
        assert t in graph
        assert len(graph) == 1

    def test_add_is_idempotent(self):
        graph = Graph()
        t = triple("s", "p", 1)
        graph.add(t).add(t)
        assert len(graph) == 1

    def test_add_triple_convenience(self):
        graph = Graph()
        graph.add_triple(EX.s, EX.p, Literal(1))
        assert Triple(EX.s, EX.p, Literal(1)) in graph

    def test_add_rejects_non_triples(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add((EX.s, EX.p, Literal(1)))

    def test_update_from_iterable(self):
        graph = Graph()
        graph.update([triple("s", "p", i) for i in range(5)])
        assert len(graph) == 5

    def test_constructor_accepts_triples(self):
        triples = [triple("s", "p", i) for i in range(3)]
        graph = Graph(triples)
        assert len(graph) == 3

    def test_remove_and_discard(self):
        graph = Graph()
        t = triple("s", "p", 1)
        graph.add(t)
        graph.remove(t)
        assert t not in graph
        graph.discard(t)  # no error on absent triple
        with pytest.raises(GraphError):
            graph.remove(t)

    def test_remove_updates_indexes(self):
        graph = Graph()
        t = triple("s", "p", 1)
        graph.add(t)
        graph.remove(t)
        assert list(graph.triples(EX.s, None, None)) == []
        assert list(graph.triples(None, EX.p, None)) == []
        assert list(graph.triples(None, None, Literal(1))) == []

    def test_clear(self):
        graph = Graph([triple("s", "p", 1)])
        graph.clear()
        assert len(graph) == 0
        assert list(graph.triples(EX.s, None, None)) == []

    def test_equality_with_graph_and_set(self):
        t = triple("s", "p", 1)
        assert Graph([t]) == Graph([t])
        assert Graph([t]) == {t}

    def test_graphs_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())

    def test_copy_is_independent(self):
        graph = Graph([triple("s", "p", 1)])
        clone = graph.copy()
        clone.add(triple("s", "p", 2))
        assert len(graph) == 1
        assert len(clone) == 2


class TestPatternQueries:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.add(Triple(EX.john, FOAF.age, Literal(23)))
        g.add(Triple(EX.john, FOAF.name, Literal("John")))
        g.add(Triple(EX.john, FOAF.knows, EX.bob))
        g.add(Triple(EX.bob, FOAF.age, Literal(34)))
        g.add(Triple(EX.bob, FOAF.name, Literal("Bob")))
        return g

    def test_fully_bound_pattern(self, graph):
        assert len(list(graph.triples(EX.john, FOAF.age, Literal(23)))) == 1
        assert len(list(graph.triples(EX.john, FOAF.age, Literal(99)))) == 0

    def test_subject_only(self, graph):
        assert len(list(graph.triples(EX.john, None, None))) == 3

    def test_subject_predicate(self, graph):
        assert len(list(graph.triples(EX.john, FOAF.name, None))) == 1

    def test_predicate_only(self, graph):
        assert len(list(graph.triples(None, FOAF.age, None))) == 2

    def test_predicate_object(self, graph):
        matches = list(graph.triples(None, FOAF.age, Literal(34)))
        assert matches == [Triple(EX.bob, FOAF.age, Literal(34))]

    def test_object_only(self, graph):
        matches = list(graph.triples(None, None, EX.bob))
        assert matches == [Triple(EX.john, FOAF.knows, EX.bob)]

    def test_wildcard_everything(self, graph):
        assert len(list(graph.triples())) == 5

    def test_unknown_subject_is_empty(self, graph):
        assert list(graph.triples(EX.nobody, None, None)) == []

    def test_subjects_predicates_objects(self, graph):
        assert set(graph.subjects(FOAF.age)) == {EX.john, EX.bob}
        assert set(graph.predicates(EX.john)) == {FOAF.age, FOAF.name, FOAF.knows}
        assert set(graph.objects(EX.john, FOAF.knows)) == {EX.bob}

    def test_value_returns_one_or_none(self, graph):
        assert graph.value(EX.john, FOAF.age) == Literal(23)
        assert graph.value(EX.john, FOAF.homepage) is None

    def test_nodes_are_subjects(self, graph):
        assert set(graph.nodes()) == {EX.john, EX.bob}

    def test_all_nodes_include_objects(self, graph):
        assert Literal("Bob") in set(graph.all_nodes())

    def test_degree(self, graph):
        assert graph.degree(EX.john) == 3
        assert graph.degree(EX.nobody) == 0


class TestPaperAlgebra:
    def test_union_preserves_blank_node_identity(self):
        shared = BNode("shared")
        g1 = Graph([Triple(shared, EX.p, Literal(1))])
        g2 = Graph([Triple(shared, EX.q, Literal(2))])
        union = g1 | g2
        assert len(union) == 2
        assert len(set(union.nodes())) == 1  # same blank node, not renamed

    def test_union_does_not_mutate_operands(self):
        g1 = Graph([triple("s", "p", 1)])
        g2 = Graph([triple("s", "p", 2)])
        _ = g1 + g2
        assert len(g1) == 1
        assert len(g2) == 1

    def test_union_merges_namespaces(self):
        g1 = Graph()
        g2 = Graph()
        g2.namespaces.bind("custom", "http://custom.example/")
        union = g1.union(g2)
        assert "custom" in union.namespaces

    def test_neighbourhood_is_sigma_g_n(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.a, Literal(1)))
        graph.add(Triple(EX.n, EX.b, Literal(1)))
        graph.add(Triple(EX.other, EX.a, Literal(1)))
        graph.add(Triple(EX.x, EX.points_to, EX.n))  # incoming arc is not part of Σgₙ
        neighbourhood = graph.neighbourhood(EX.n)
        assert neighbourhood == {
            Triple(EX.n, EX.a, Literal(1)),
            Triple(EX.n, EX.b, Literal(1)),
        }

    def test_neighbourhood_of_unknown_node_is_empty(self):
        assert Graph().neighbourhood(EX.nobody) == frozenset()

    def test_example_3_decomposition(self):
        """Example 3: a 3-triple graph has exactly 2³ = 8 decompositions."""
        triples = frozenset({
            Triple(EX.n, EX.a, Literal(1)),
            Triple(EX.n, EX.b, Literal(1)),
            Triple(EX.n, EX.b, Literal(2)),
        })
        pairs = list(decompositions(triples))
        assert len(pairs) == 8
        assert decomposition_count(triples) == 8
        # every pair unions back to the original graph
        for left, right in pairs:
            assert left | right == triples
            assert left & right == frozenset()
        # both trivial splits are present
        assert (frozenset(), triples) in pairs
        assert (triples, frozenset()) in pairs

    def test_decompositions_of_empty_graph(self):
        assert list(decompositions(frozenset())) == [(frozenset(), frozenset())]

    def test_decomposition_count_grows_exponentially(self):
        triples = frozenset(triple("n", "p", i) for i in range(10))
        assert decomposition_count(triples) == 1024


class TestNeighbourhoodView:
    def test_grouping_by_predicate(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.a, Literal(1)))
        graph.add(Triple(EX.n, EX.b, Literal(1)))
        graph.add(Triple(EX.n, EX.b, Literal(2)))
        view = graph.neighbourhood_view(EX.n)
        assert len(view) == 3
        assert view.predicates() == [EX.a, EX.b]
        assert len(view.by_predicate(EX.b)) == 2
        assert view.by_predicate(EX.missing) == ()

    def test_sorted_iteration_is_deterministic(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.b, Literal(2)))
        graph.add(Triple(EX.n, EX.a, Literal(1)))
        view = graph.neighbourhood_view(EX.n)
        assert [t.predicate for t in view] == [EX.a, EX.b]

    def test_rejects_foreign_triples(self):
        with pytest.raises(GraphError):
            NeighbourhoodView(EX.n, frozenset({Triple(EX.other, EX.a, Literal(1))}))


class TestSerialisationDispatch:
    def test_turtle_round_trip(self):
        graph = Graph([Triple(EX.s, FOAF.name, Literal("Ada"))])
        text = graph.serialize("turtle")
        assert Graph.parse(text, format="turtle") == graph

    def test_ntriples_round_trip(self):
        graph = Graph([Triple(EX.s, FOAF.name, Literal("Ada"))])
        text = graph.serialize("ntriples")
        assert Graph.parse(text, format="ntriples") == graph

    def test_unknown_format_raises(self):
        with pytest.raises(GraphError):
            Graph().serialize("rdfxml")
        with pytest.raises(GraphError):
            Graph.parse("", format="rdfxml")
