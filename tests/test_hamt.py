"""Tests for the persistent HAMT behind :class:`ShapeTyping`.

The interesting machinery — hash-path placement, collision buckets,
structural sharing, canonical (insertion-independent) structure — is
exercised here with engineered key hashes; pickling is tested against deep
tries because parallel validation ships typings across processes, where the
receiving interpreter has a *different* string hash seed.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.rdf import EX
from repro.shex.hamt import HamtMap
from repro.shex.typing import ShapeLabel, ShapeTyping


class FixedHashKey:
    """A key whose hash is chosen by the test (to force collisions/depth)."""

    def __init__(self, name: str, h: int):
        self.name = name
        self.h = h

    def __hash__(self) -> int:
        return self.h

    def __eq__(self, other) -> bool:
        return isinstance(other, FixedHashKey) and other.name == self.name

    def __repr__(self) -> str:
        return f"FixedHashKey({self.name!r}, {self.h})"

    def sort_key(self) -> tuple:
        return ("FixedHashKey", self.name)

    def __reduce__(self):
        return (FixedHashKey, (self.name, self.h))


class TestBasicOperations:
    def test_empty_map(self):
        empty = HamtMap.empty()
        assert len(empty) == 0
        assert not empty
        assert "missing" not in empty
        assert empty.get("missing") is None
        assert empty.get("missing", 42) == 42
        assert list(empty.items()) == []

    def test_empty_is_a_singleton(self):
        assert HamtMap.empty() is HamtMap.empty()

    def test_assoc_is_persistent(self):
        empty = HamtMap.empty()
        one = empty.assoc("a", 1)
        two = one.assoc("b", 2)
        assert len(empty) == 0 and len(one) == 1 and len(two) == 2
        assert one.get("a") == 1 and one.get("b") is None
        assert two.get("a") == 1 and two.get("b") == 2

    def test_assoc_replaces_values(self):
        mapping = HamtMap.empty().assoc("a", 1).assoc("a", 2)
        assert len(mapping) == 1
        assert mapping.get("a") == 2

    def test_assoc_same_value_object_is_a_no_op(self):
        value = frozenset([1])
        mapping = HamtMap.empty().assoc("a", value)
        assert mapping.assoc("a", value) is mapping

    def test_upsert_merges_in_one_walk(self):
        mapping = HamtMap.empty().upsert("a", frozenset([1]), frozenset.union)
        assert mapping.get("a") == frozenset([1])
        mapping = mapping.upsert("a", frozenset([2]), frozenset.union)
        assert mapping.get("a") == frozenset([1, 2])
        # merge handing back the existing object is a no-op returning self
        assert mapping.upsert("a", frozenset([9]), lambda old, new: old) is mapping

    def test_random_contents_match_a_dict(self):
        rng = random.Random(7)
        model = {}
        mapping = HamtMap.empty()
        for i in range(500):
            key, value = f"key{rng.randrange(200)}", rng.randrange(1000)
            model[key] = value
            mapping = mapping.assoc(key, value)
        assert len(mapping) == len(model)
        assert dict(mapping.items()) == model
        assert set(mapping) == set(model)
        for key, value in model.items():
            assert mapping.get(key) == value


class TestCollisionsAndDepth:
    def test_full_hash_collisions_share_a_bucket(self):
        keys = [FixedHashKey(f"c{i}", 999) for i in range(6)]
        mapping = HamtMap.from_items((k, k.name) for k in keys)
        assert len(mapping) == 6
        for key in keys:
            assert mapping.get(key) == key.name
        assert mapping.get(FixedHashKey("other", 999)) is None

    def test_colliding_entries_iterate_canonically(self):
        keys = [FixedHashKey(f"c{i}", 999) for i in range(6)]
        forward = HamtMap.from_items((k, 0) for k in keys)
        backward = HamtMap.from_items((k, 0) for k in reversed(keys))
        assert list(forward.items()) == list(backward.items())
        assert forward == backward and hash(forward) == hash(backward)

    def test_deep_hash_prefixes_build_deep_tries(self):
        # hashes share the low 55 bits, so the trie must chain down to the
        # deepest level before the keys diverge
        keys = [FixedHashKey(f"d{i}", (i << 55) | 0b11111) for i in range(32)]
        mapping = HamtMap.from_items((k, k.name) for k in keys)
        assert len(mapping) == 32
        for key in keys:
            assert mapping.get(key) == key.name

    def test_structure_is_insertion_order_independent(self):
        rng = random.Random(3)
        items = [(FixedHashKey(f"k{i}", rng.randrange(64)), i) for i in range(60)]
        shuffled = items[:]
        rng.shuffle(shuffled)
        a, b = HamtMap.from_items(items), HamtMap.from_items(shuffled)
        assert a == b
        assert hash(a) == hash(b)
        assert list(a.items()) == list(b.items())


class TestMerge:
    def test_merge_is_the_union(self):
        rng = random.Random(11)
        da = {f"k{rng.randrange(40)}": frozenset([rng.randrange(5)]) for _ in range(30)}
        db = {f"k{rng.randrange(40)}": frozenset([rng.randrange(5)]) for _ in range(30)}
        merged = HamtMap.from_items(da.items()).merge(
            HamtMap.from_items(db.items()), frozenset.union)
        expected = dict(da)
        for key, value in db.items():
            expected[key] = expected.get(key, frozenset()) | value
        assert dict(merged.items()) == expected

    def test_merge_skips_identical_subtries(self):
        base = HamtMap.from_items((f"x{i}", frozenset([i])) for i in range(100))
        derived = base.assoc("extra", frozenset([1]))
        # the merge must recognise the shared structure and return the
        # larger map itself, not an equal copy
        assert base.merge(derived, frozenset.union) is derived
        assert derived.merge(base, frozenset.union) is base.merge(
            derived, frozenset.union)
        assert base.merge(base, frozenset.union) is base

    def test_merge_returns_the_covering_operand_without_shared_history(self):
        # the superset was built independently (no identity-shared subtries
        # with the subset, as after unpickling in a worker process); when the
        # merge function hands back the covering operand's value objects —
        # as the typing's label union does — the merge must recognise the
        # coverage and return the covering map itself, not a copy
        def sharing_union(left, right):
            if right.issubset(left):
                return left
            if left.issubset(right):
                return right
            return left | right

        subset = HamtMap.from_items(
            (f"k{i}", frozenset([i % 3])) for i in range(20))
        superset = HamtMap.from_items(
            [(f"k{i}", frozenset([i % 3, 9])) for i in range(20)]
            + [(f"extra{i}", frozenset([9])) for i in range(5)])
        assert subset.merge(superset, sharing_union) is superset
        assert superset.merge(subset, sharing_union) is superset

    def test_merge_with_empty_returns_the_other_operand(self):
        mapping = HamtMap.from_items([("a", 1)])
        assert mapping.merge(HamtMap.empty(), lambda x, y: x) is mapping
        assert HamtMap.empty().merge(mapping, lambda x, y: x) is mapping

    def test_merge_applies_the_value_function_left_to_right(self):
        left = HamtMap.from_items([("k", "L"), ("only-left", "l")])
        right = HamtMap.from_items([("k", "R"), ("only-right", "r")])
        merged = left.merge(right, lambda a, b: a + b)
        assert merged.get("k") == "LR"
        assert merged.get("only-left") == "l"
        assert merged.get("only-right") == "r"

    def test_merge_through_collision_buckets(self):
        shared = [FixedHashKey(f"c{i}", 123) for i in range(4)]
        left = HamtMap.from_items([(k, frozenset([0])) for k in shared[:3]])
        right = HamtMap.from_items([(k, frozenset([1])) for k in shared[1:]])
        merged = left.merge(right, frozenset.union)
        assert len(merged) == 4
        assert merged.get(shared[0]) == frozenset([0])
        assert merged.get(shared[1]) == frozenset([0, 1])
        assert merged.get(shared[3]) == frozenset([1])


class TestPickling:
    """Parallel validation ships typings across processes; the receiving
    interpreter has a different hash seed, so pickles must rebuild."""

    def _round_trip(self, mapping: HamtMap) -> HamtMap:
        clone = pickle.loads(pickle.dumps(mapping))
        assert clone == mapping
        assert len(clone) == len(mapping)
        for key, value in mapping.items():
            assert clone.get(key) == value
        return clone

    def test_small_map_round_trips(self):
        self._round_trip(HamtMap.from_items([("a", 1), ("b", 2)]))

    def test_large_map_round_trips(self):
        self._round_trip(HamtMap.from_items(
            (f"key{i}", frozenset([i % 7])) for i in range(1000)))

    def test_deep_trie_round_trips(self):
        # shared low hash bits force maximum-depth chains — the pickle must
        # not recurse down the tree (it ships items, not nodes)
        keys = [FixedHashKey(f"deep{i}", (i << 55) | 0b1010) for i in range(64)]
        self._round_trip(HamtMap.from_items((k, k.name) for k in keys))

    def test_collision_buckets_round_trip(self):
        keys = [FixedHashKey(f"c{i}", 77) for i in range(8)]
        self._round_trip(HamtMap.from_items((k, k.name) for k in keys))

    def test_pickle_payload_contains_items_not_nodes(self):
        mapping = HamtMap.from_items((f"k{i}", i) for i in range(50))
        rebuild, (items,) = mapping.__reduce__()
        assert dict(items) == dict(mapping.items())
        assert rebuild(items) == mapping

    def test_shape_typing_round_trips(self):
        typing = ShapeTyping.empty()
        for i in range(300):
            typing = typing.add(EX[f"person{i}"], "Person")
            if i % 3 == 0:
                typing = typing.add(EX[f"person{i}"], "Employee")
        clone = pickle.loads(pickle.dumps(typing))
        assert clone == typing
        assert hash(clone) == hash(typing)
        assert clone.to_dict() == typing.to_dict()
        assert clone.labels_for(EX.person0) == \
            {ShapeLabel("Person"), ShapeLabel("Employee")}

    def test_pickled_typing_stays_usable(self):
        typing = ShapeTyping.single(EX.john, "Person")
        clone = pickle.loads(pickle.dumps(typing))
        extended = clone.add(EX.bob, "Person")
        assert extended.has(EX.john, "Person")
        assert extended.has(EX.bob, "Person")


class TestValueSemantics:
    def test_equality_ignores_history(self):
        a = HamtMap.empty().assoc("x", 1).assoc("y", 2).assoc("z", 3)
        b = HamtMap.empty().assoc("z", 3).assoc("x", 0).assoc("y", 2).assoc("x", 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = HamtMap.from_items([("x", 1)])
        assert a != HamtMap.from_items([("x", 2)])
        assert a != HamtMap.from_items([("y", 1)])
        assert a != HamtMap.empty()
        assert a.__eq__(object()) is NotImplemented

    def test_maps_are_hashable_set_members(self):
        a = HamtMap.from_items([("x", 1)])
        b = HamtMap.from_items([("x", 1)])
        assert len({a, b}) == 1

    def test_repr_lists_entries(self):
        assert "'x': 1" in repr(HamtMap.from_items([("x", 1)]))

    def test_assoc_requires_hashable_keys(self):
        with pytest.raises(TypeError):
            HamtMap.empty().assoc([], 1)
