"""Incremental revalidation: journal, batching, retraction, revalidate.

The subsystem spans every layer — the graph's bounded change journal and
batch coalescing, the HAMT's persistent ``dissoc``, the reverse
reference-reachability closure, the context's retraction protocol and the
validator's ``revalidate`` — so this module tests each layer in isolation
and then the end-to-end contract: *revalidate verdicts equal a fresh full
run* on every mutation pattern.
"""

from __future__ import annotations

import pytest

from repro.rdf import (
    EX,
    FOAF,
    XSD,
    ChangeJournal,
    Graph,
    GraphError,
    Literal,
    StaleSnapshotError,
    Triple,
)
from repro.shex import Validator
from repro.shex.hamt import HamtMap
from repro.shex.partition import ReferenceIndex, affected_nodes
from repro.shex.schema import SchemaError
from repro.shex.typing import ShapeLabel, ShapeTyping
from repro.workloads import (
    generate_community_workload,
    generate_person_workload,
    person_schema,
)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def _triples(*specs):
    return [Triple(*spec) for spec in specs]


# --------------------------------------------------------------------- journal
class TestChangeJournal:
    def test_records_and_answers_changes_since(self):
        journal = ChangeJournal()
        journal.record(EX.a, 1)
        journal.record(EX.b, 2)
        assert journal.changes_since(0) == {EX.a, EX.b}
        assert journal.changes_since(1) == {EX.b}
        assert journal.changes_since(2) == frozenset()

    def test_re_dirtying_updates_the_epoch(self):
        journal = ChangeJournal()
        journal.record(EX.a, 1)
        journal.record(EX.a, 5)
        assert journal.changes_since(4) == {EX.a}

    def test_overflow_answers_none_for_older_generations(self):
        journal = ChangeJournal(max_entries=2)
        journal.record(EX.a, 1)
        journal.record(EX.b, 2)
        journal.record(EX.c, 3)  # overflows: three distinct subjects
        assert journal.overflows == 1
        assert journal.changes_since(0) is None
        assert journal.changes_since(2) is None
        # generations from the overflow on are answerable again
        journal.record(EX.d, 4)
        assert journal.changes_since(3) == {EX.d}

    def test_rejects_a_zero_bound(self):
        with pytest.raises(ValueError):
            ChangeJournal(max_entries=0)

    def test_stats_counters(self):
        journal = ChangeJournal(max_entries=10)
        journal.record(EX.a, 1)
        stats = journal.stats()
        assert stats["tracked_subjects"] == 1
        assert stats["records"] == 1
        assert stats["overflows"] == 0
        assert stats["max_entries"] == 10


class TestGraphJournalIntegration:
    def test_mutations_are_journalled_per_subject(self):
        graph = Graph()
        start = graph.generation
        graph.add(Triple(EX.a, EX.p, Literal(1)))
        graph.add(Triple(EX.b, EX.p, Literal(2)))
        assert graph.changes_since(start) == {EX.a, EX.b}
        mid = graph.generation
        graph.discard(Triple(EX.a, EX.p, Literal(1)))
        assert graph.changes_since(mid) == {EX.a}

    def test_duplicate_add_is_not_a_change(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.p, Literal(1)))
        generation = graph.generation
        graph.add(Triple(EX.a, EX.p, Literal(1)))
        assert graph.generation == generation
        assert graph.changes_since(generation) == frozenset()

    def test_clear_truncates_the_journal(self):
        graph = Graph()
        start = graph.generation
        graph.add(Triple(EX.a, EX.p, Literal(1)))
        graph.clear()
        assert graph.changes_since(start) is None

    def test_batch_coalesces_journal_records(self):
        graph = Graph()
        start = graph.generation
        with graph.batch():
            for index in range(50):
                graph.add(Triple(EX.a, EX.p, Literal(index)))
                graph.add(Triple(EX.b, EX.p, Literal(index)))
        # the generation counts every effective mutation (so derived state
        # stays stale-detectable even mid-batch) …
        assert graph.generation == start + 100
        # … but the journal gets one record per touched subject, not 100
        assert graph.changes_since(start) == {EX.a, EX.b}
        assert graph.journal.stats()["records"] == 2

    def test_reads_inside_a_batch_see_current_triples(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.p, Literal(1)))
        assert len(graph.neighbourhood(EX.a)) == 1
        with graph.batch():
            graph.add(Triple(EX.a, EX.p, Literal(2)))
            assert len(graph.neighbourhood(EX.a)) == 2

    def test_noop_batch_leaves_the_generation_untouched(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.p, Literal(1)))
        generation = graph.generation
        with graph.batch():
            pass  # empty batch
        with graph.batch():
            graph.add(Triple(EX.a, EX.p, Literal(1)))  # idempotent replay
        graph.remove_all([Triple(EX.b, EX.p, Literal(9))])  # absent triple
        assert graph.generation == generation
        assert graph.changes_since(generation) == frozenset()

    def test_changes_since_inside_a_batch_raises(self):
        graph = Graph()
        with graph.batch():
            graph.add(Triple(EX.a, EX.p, Literal(1)))
            with pytest.raises(GraphError):
                graph.changes_since(0)

    def test_nested_batches_coalesce_into_the_outermost(self):
        graph = Graph()
        start = graph.generation
        with graph.batch():
            graph.add(Triple(EX.a, EX.p, Literal(1)))
            with graph.batch():
                graph.add(Triple(EX.b, EX.p, Literal(1)))
            # the inner end_batch journals nothing yet
            assert graph.journal.stats()["records"] == 0
        assert graph.changes_since(start) == {EX.a, EX.b}
        assert graph.journal.stats()["records"] == 2

    def test_end_batch_without_begin_raises(self):
        with pytest.raises(GraphError):
            Graph().end_batch()

    def test_add_all_and_remove_all(self):
        graph = Graph()
        triples = _triples((EX.a, EX.p, Literal(1)), (EX.b, EX.p, Literal(2)))
        start = graph.generation
        graph.add_all(triples)
        assert set(graph) == set(triples)
        assert graph.changes_since(start) == {EX.a, EX.b}
        assert graph.generation == start + 2
        mid = graph.generation
        graph.remove_all(triples + _triples((EX.c, EX.p, Literal(3))))  # absent ok
        assert len(graph) == 0
        assert graph.changes_since(mid) == {EX.a, EX.b}

    def test_constructor_load_is_one_batch(self):
        triples = [Triple(EX[f"s{i}"], EX.p, Literal(i)) for i in range(100)]
        graph = Graph(triples)
        assert graph.journal.stats()["records"] == 100  # one per subject

    def test_parsers_load_in_one_batch(self):
        turtle = ("@prefix : <http://example.org/> .\n"
                  ":a :p 1 .\n:a :q 2 .\n:b :p 2 .\n")
        graph = Graph.parse(turtle)
        assert graph.journal.stats()["records"] == 2  # :a and :b, not 3
        ntriples = ('<http://example.org/a> <http://example.org/p> '
                    '"1"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
                    '<http://example.org/a> <http://example.org/q> '
                    '"2"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
        graph = Graph.parse(ntriples, format="ntriples")
        assert graph.journal.stats()["records"] == 1

    def test_bulk_helpers_accept_live_generators_over_the_same_graph(self):
        graph = Graph()
        graph.add_all(Triple(EX.a, EX.p, Literal(i)) for i in range(5))
        graph.add(Triple(EX.b, EX.p, Literal(0)))
        # 'delete this subject' through a live query over the same graph
        graph.remove_all(graph.triples(subject=EX.a))
        assert len(graph) == 1
        # and re-adding from a live query over another pattern
        graph.add_all(graph.triples(predicate=EX.p))
        assert len(graph) == 1

    def test_mid_batch_snapshot_staleness_is_detected(self):
        graph = Graph()
        with graph.batch():
            graph.add(Triple(EX.a, EX.p, Literal(1)))
            snapshot = graph.snapshot()
            graph.add(Triple(EX.b, EX.p, Literal(2)))
            with pytest.raises(StaleSnapshotError):
                snapshot.ensure_fresh(graph)


class TestStaleSnapshot:
    def test_fresh_snapshot_passes_and_chains(self):
        graph = Graph(_triples((EX.a, EX.p, Literal(1))))
        snapshot = graph.snapshot()
        assert snapshot.ensure_fresh(graph) is snapshot

    def test_stale_snapshot_raises(self):
        graph = Graph(_triples((EX.a, EX.p, Literal(1))))
        snapshot = graph.snapshot()
        graph.add(Triple(EX.b, EX.p, Literal(2)))
        with pytest.raises(StaleSnapshotError) as excinfo:
            snapshot.ensure_fresh(graph)
        assert "generation" in str(excinfo.value)


# ----------------------------------------------------------------- HAMT dissoc
class TestHamtDissoc:
    def test_dissoc_removes_and_shares(self):
        mapping = HamtMap.from_items((EX[f"n{i}"], i) for i in range(100))
        smaller = mapping.dissoc(EX.n42)
        assert len(smaller) == 99
        assert EX.n42 not in smaller
        assert EX.n41 in smaller
        assert len(mapping) == 100  # persistent: the original is untouched

    def test_dissoc_absent_key_returns_self(self):
        mapping = HamtMap.from_items([(EX.a, 1)])
        assert mapping.dissoc(EX.b) is mapping
        assert HamtMap.empty().dissoc(EX.a) is HamtMap.empty()

    def test_dissoc_restores_canonical_shape(self):
        # removing a key yields a map equal (and equal-hash) to one that
        # never contained it — the shape is canonical for the key set
        keys = [EX[f"n{i}"] for i in range(64)]
        full = HamtMap.from_items((key, 0) for key in keys)
        for victim in keys[::7]:
            removed = full.dissoc(victim)
            rebuilt = HamtMap.from_items(
                (key, 0) for key in keys if key is not victim)
            assert removed == rebuilt
            assert hash(removed) == hash(rebuilt)

    def test_dissoc_to_empty(self):
        mapping = HamtMap.from_items([(EX.a, 1)])
        assert mapping.dissoc(EX.a) is HamtMap.empty()

    def test_typing_without_nodes(self):
        label = ShapeLabel("S")
        typing = ShapeTyping.from_pairs(
            (EX[f"n{i}"], label) for i in range(20))
        pruned = typing.without_nodes([EX.n3, EX.n7, EX.missing])
        assert len(pruned) == 18
        assert not pruned.has(EX.n3, label)
        assert pruned.has(EX.n4, label)
        assert typing.without_nodes([]) is typing
        assert typing.without_nodes([EX.absent]) is typing


# ------------------------------------------------------------ affected closure
class TestAffectedNodes:
    def test_reverse_index_exposes_referrer_labels(self):
        index = ReferenceIndex(person_schema())
        assert index.referrer_labels_for(FOAF.knows) == {ShapeLabel("Person")}
        assert index.referrer_labels_for(FOAF.age) == frozenset()

    def test_dirty_only_without_references(self):
        schema = person_schema()
        graph = Graph(_triples((EX.a, FOAF.age, Literal(3))))
        assert affected_nodes(graph, schema, {EX.a}) == {EX.a}

    def test_closure_follows_reference_edges_backwards(self):
        schema = person_schema()
        graph = Graph()
        chain = [EX.p0, EX.p1, EX.p2, EX.p3]
        with graph.batch():
            for person in chain:
                graph.add(Triple(person, FOAF.age, Literal(30)))
                graph.add(Triple(person, FOAF.name, Literal("x")))
            for left, right in zip(chain, chain[1:]):
                graph.add(Triple(left, FOAF.knows, right))
        # dirtying the chain's tail affects every upstream referrer …
        assert affected_nodes(graph, schema, {EX.p3}) == set(chain)
        # … but dirtying the head affects only the head
        assert affected_nodes(graph, schema, {EX.p0}) == {EX.p0}

    def test_closure_stays_inside_the_community(self):
        workload = generate_community_workload(
            num_communities=4, people_per_community=6, seed=5)
        member = workload.valid_nodes[0]
        community = str(member.value).rsplit("_", 1)[0]
        closure = affected_nodes(workload.graph, workload.schema, {member})
        assert member in closure
        assert all(str(node.value).startswith(community) for node in closure)

    def test_compiled_pruning_stops_at_statically_decided_targets(self):
        from repro.shex.compiled import CompiledSchema

        schema = person_schema()
        graph = Graph()
        with graph.batch():
            # referrer -> target, where the target is statically rejectable
            # (missing required predicates entirely)
            graph.add(Triple(EX.referrer, FOAF.age, Literal(30)))
            graph.add(Triple(EX.referrer, FOAF.name, Literal("r")))
            graph.add(Triple(EX.referrer, FOAF.knows, EX.target))
            graph.add(Triple(EX.target, EX.unrelated, Literal(1)))
            # the target references a third node
            graph.add(Triple(EX.target, FOAF.knows, EX.third))
            graph.add(Triple(EX.third, FOAF.age, Literal(30)))
            graph.add(Triple(EX.third, FOAF.name, Literal("t")))
        compiled = CompiledSchema(schema)
        # third dirty: the walk reaches target; target's demanded labels are
        # statically decided and target itself is clean, so propagation stops
        pruned = affected_nodes(graph, schema, {EX.third}, compiled=compiled)
        assert pruned == {EX.third, EX.target}
        # without the compiled schema the referrer is (soundly) included
        unpruned = affected_nodes(graph, schema, {EX.third})
        assert unpruned == {EX.third, EX.target, EX.referrer}
        # a *dirty* statically-decided node always propagates
        dirty_target = affected_nodes(graph, schema, {EX.target},
                                      compiled=compiled)
        assert EX.referrer in dirty_target


# ------------------------------------------------------------------ retraction
class TestRetractNodes:
    def test_retracts_settled_verdicts_and_counts_them(self):
        workload = generate_person_workload(num_people=10, seed=2)
        validator = Validator(workload.graph, workload.schema)
        validator.validate_graph()
        context = validator._bulk_context()
        node = workload.valid_nodes[0]
        label = ShapeLabel("Person")
        assert context.is_confirmed(node, label)
        dropped = context.retract_nodes([node])
        assert dropped >= 1
        assert not context.is_confirmed(node, label)
        assert not context.is_failed(node, label)

    def test_retract_empty_set_is_a_noop(self):
        workload = generate_person_workload(num_people=5, seed=2)
        validator = Validator(workload.graph, workload.schema)
        validator.validate_graph()
        context = validator._bulk_context()
        before = context.typing
        assert context.retract_nodes([]) == 0
        assert context.typing is before

    def test_retract_during_validation_raises(self):
        from repro.shex.schema import ValidationContext

        workload = generate_person_workload(num_people=5, seed=2)
        validator = Validator(workload.graph, workload.schema)
        context = validator._bulk_context()
        context.assume(EX.someone, ShapeLabel("Person"))
        with pytest.raises(SchemaError):
            context.retract_nodes([EX.someone])
        assert isinstance(context, ValidationContext)


# ------------------------------------------------------------------ revalidate
class TestRevalidate:
    def _fresh_verdicts(self, graph, schema):
        return _verdicts(Validator(graph.copy(), schema).validate_graph())

    def test_first_call_is_a_full_rebuild(self):
        workload = generate_person_workload(num_people=8, seed=1)
        validator = Validator(workload.graph, workload.schema)
        result = validator.revalidate()
        assert result.full_rebuild
        assert _verdicts(result.report) == self._fresh_verdicts(
            workload.graph, workload.schema)

    def test_incremental_matches_fresh_run_after_edits(self):
        workload = generate_community_workload(
            num_communities=5, people_per_community=7, seed=9)
        graph, schema = workload.graph, workload.schema
        validator = Validator(graph, schema)
        validator.validate_graph()

        victim = workload.valid_nodes[0]
        graph.add(Triple(victim, FOAF.age, Literal(200)))  # duplicate age
        result = validator.revalidate()
        assert not result.full_rebuild
        assert victim in result.dirty
        entry = result.report.entry_for(victim, "Person")
        assert entry is not None and not entry.conforms
        assert _verdicts(result.report) == self._fresh_verdicts(graph, schema)
        assert result.report.typing == Validator(
            graph.copy(), schema).validate_graph().typing

    def test_repairing_a_node_revalidates_its_referrers(self):
        schema = person_schema()
        graph = Graph()
        with graph.batch():
            graph.add(Triple(EX.a, FOAF.age, Literal(30)))
            graph.add(Triple(EX.a, FOAF.name, Literal("a")))
            graph.add(Triple(EX.a, FOAF.knows, EX.b))
            graph.add(Triple(EX.b, FOAF.age, Literal(31)))
            # b is broken: no name, so a fails too (its reference fails)
        validator = Validator(graph, schema)
        report = validator.validate_graph()
        assert not report.entry_for(EX.a, "Person").conforms
        graph.add(Triple(EX.b, FOAF.name, Literal("b")))  # repair b
        result = validator.revalidate()
        assert not result.full_rebuild
        assert EX.a in result.affected  # reverse reachability pulled a in
        assert result.report.entry_for(EX.a, "Person").conforms
        assert result.report.entry_for(EX.b, "Person").conforms
        assert _verdicts(result.report) == self._fresh_verdicts(graph, schema)

    def test_subject_addition_and_removal(self):
        workload = generate_person_workload(num_people=6, seed=4)
        graph, schema = workload.graph, workload.schema
        validator = Validator(graph, schema)
        validator.validate_graph()
        # brand-new subject
        graph.add_all(_triples(
            (EX.newcomer, FOAF.age, Literal(20)),
            (EX.newcomer, FOAF.name, Literal("New")),
        ))
        result = validator.revalidate()
        assert not result.full_rebuild
        assert result.report.entry_for(EX.newcomer, "Person").conforms
        assert _verdicts(result.report) == self._fresh_verdicts(graph, schema)
        # remove it again: its entries must disappear from the report
        graph.remove_all(list(graph.triples(subject=EX.newcomer)))
        result = validator.revalidate()
        assert not result.full_rebuild
        assert result.report.entry_for(EX.newcomer, "Person") is None
        assert _verdicts(result.report) == self._fresh_verdicts(graph, schema)

    def test_noop_revalidate_recomputes_nothing(self):
        workload = generate_person_workload(num_people=6, seed=4)
        validator = Validator(workload.graph, workload.schema)
        baseline = validator.validate_graph()
        result = validator.revalidate()
        assert not result.full_rebuild
        assert len(result.delta) == 0
        assert result.retracted == 0
        assert _verdicts(result.report) == _verdicts(baseline)

    def test_delta_contains_exactly_the_affected_subject_pairs(self):
        workload = generate_community_workload(
            num_communities=4, people_per_community=6, seed=11)
        graph, schema = workload.graph, workload.schema
        validator = Validator(graph, schema)
        baseline = validator.validate_graph()
        victim = workload.valid_nodes[0]
        graph.add(Triple(victim, EX.nickname, Literal("Zed")))
        result = validator.revalidate()
        delta_nodes = {entry.node for entry in result.delta}
        subject_set = set(graph.nodes())
        assert delta_nodes == {node for node in result.affected
                               if node in subject_set}
        # unaffected entries are reused object-identically from the baseline
        untouched = next(node for node in workload.valid_nodes
                         if node not in result.affected)
        reused = result.report.entry_for(untouched, "Person")
        assert any(reused is entry for entry in baseline)
        # the victim's entry is not
        recomputed = result.report.entry_for(victim, "Person")
        assert all(recomputed is not entry for entry in baseline)

    def test_journal_overflow_forces_full_rebuild(self):
        workload = generate_person_workload(num_people=6, seed=4)
        graph = Graph(list(workload.graph), journal_max_entries=2)
        validator = Validator(graph, workload.schema)
        validator.validate_graph()
        with graph.batch():
            for index in range(5):  # 5 distinct subjects > bound of 2
                graph.add(Triple(EX[f"extra{index}"], FOAF.age, Literal(1)))
        result = validator.revalidate()
        assert result.full_rebuild
        assert _verdicts(result.report) == self._fresh_verdicts(
            graph, workload.schema)

    def test_label_set_change_forces_full_rebuild(self):
        workload = generate_person_workload(num_people=5, seed=4)
        validator = Validator(workload.graph, workload.schema)
        validator.validate_graph(labels=["Person"])
        result = validator.revalidate()  # same labels, resolved by default
        assert not result.full_rebuild

    def test_restricted_partition_covers_only_the_affected_subgraph(self):
        from repro.shex.partition import partition_reference_graph

        workload = generate_community_workload(
            num_communities=6, people_per_community=6, seed=13)
        graph, schema = workload.graph, workload.schema
        member = workload.valid_nodes[0]
        closure = affected_nodes(graph, schema, {member})
        full = partition_reference_graph(graph, schema)
        restricted = partition_reference_graph(graph, schema,
                                               restrict_to=closure)
        # proportional to the closure, not the graph
        assert len(restricted.nodes) < len(full.nodes)
        assert closure <= set(restricted.nodes)
        # the closure's SCCs coincide with the full partition's restriction
        full_components = {
            frozenset(component) for component in full.components
            if set(component) & closure
        }
        restricted_components = {
            frozenset(component) for component in restricted.components
            if set(component) & closure
        }
        assert full_components == restricted_components

    def test_parallel_revalidate_matches_serial(self):
        workload = generate_community_workload(
            num_communities=6, people_per_community=6, seed=13)
        graph, schema = workload.graph, workload.schema
        validator = Validator(graph, schema)
        validator.validate_graph(jobs=2)
        victim = workload.valid_nodes[0]
        graph.add(Triple(victim, FOAF.age,
                         Literal("bad", datatype=XSD.string)))
        result = validator.revalidate(jobs=2)
        assert not result.full_rebuild
        assert _verdicts(result.report) == self._fresh_verdicts(graph, schema)
        assert result.report.typing == Validator(
            graph.copy(), schema).validate_graph().typing

    def test_parallel_revalidate_derives_unsettled_demanded_chains(self):
        # a label-subset baseline can leave demanded reference chains
        # unsettled: A demands B of o only after the edit, and (o, B) in
        # turn recurses into t — the restricted scheduler must expand its
        # subgraph (and worker snapshot) to cover the whole unsettled chain
        from repro.shex import Schema

        schema = Schema.from_shexc("""
            PREFIX ex: <http://example.org/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <A> { ex:p @<B> * , ex:name xsd:string }
            <B> { ex:q @<C> * , ex:name xsd:string }
            <C> { ex:name xsd:string }
        """)
        graph = Graph()
        with graph.batch():
            graph.add(Triple(EX.s, EX.name, Literal("s")))
            graph.add(Triple(EX.o, EX.name, Literal("o")))
            graph.add(Triple(EX.o, EX.q, EX.t))
            graph.add(Triple(EX.t, EX.name, Literal("t")))
        validator = Validator(graph, schema)
        validator.validate_graph(labels=["A"], jobs=2)
        graph.add(Triple(EX.s, EX.p, EX.o))
        result = validator.revalidate(labels=["A"], jobs=2)
        assert not result.full_rebuild
        fresh = Validator(graph.copy(), schema).validate_graph(labels=["A"])
        assert _verdicts(result.report) == _verdicts(fresh)
        assert result.report.entry_for(EX.s, "A").conforms

    def test_without_shared_context_degenerates_to_full(self):
        workload = generate_person_workload(num_people=5, seed=4)
        validator = Validator(workload.graph, workload.schema,
                              shared_context=False)
        validator.validate_graph()
        result = validator.revalidate()
        assert result.full_rebuild

    def test_mutation_seen_by_validate_node_invalidates_the_baseline(self):
        workload = generate_person_workload(num_people=5, seed=4)
        graph, schema = workload.graph, workload.schema
        validator = Validator(graph, schema)
        validator.validate_graph()
        graph.add(Triple(EX.stranger, FOAF.age, Literal(3)))
        # a bulk-context consumer rebuilds the context at the new generation;
        # the baseline no longer pairs with it, so revalidate must not trust it
        validator.conforming_nodes("Person")
        result = validator.revalidate()
        assert result.full_rebuild
        assert _verdicts(result.report) == self._fresh_verdicts(graph, schema)

    def test_revalidate_stats_counters(self):
        workload = generate_person_workload(num_people=6, seed=4)
        validator = Validator(workload.graph, workload.schema)
        validator.validate_graph()
        workload.graph.add(Triple(EX.person0, FOAF.age, Literal(999)))
        result = validator.revalidate()
        stats = result.stats()
        assert stats["dirty_subjects"] == 1
        assert stats["revalidated_pairs"] == len(result.delta)
        assert stats["reused_pairs"] == len(result.report) - len(result.delta)
        assert stats["full_rebuild"] == 0
