"""Property-based tests: ``revalidate`` always equals a fresh full run.

The contract of incremental revalidation is *verdict-level equivalence*: for
any schema, any graph and any interleaving of mutations and revalidation
checkpoints, the delta-updated report must carry exactly the verdicts (and
the typing) a fresh validator computes on the mutated graph from scratch.
Hypothesis drives random recursive schemas against random add/remove/
revalidate sequences over a small triple universe — small enough to explore
collisions (re-adding removed triples, emptying subjects, dirtying the same
subject twice) yet rich enough to exercise reference chains and cycles.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, XSD, Graph, Literal, Triple
from repro.shex import Schema, Validator
from repro.shex.expressions import arc, interleave_all, optional, plus, star
from repro.shex.node_constraints import DatatypeConstraint, shape_ref, value_set

NODES = [EX[f"n{i}"] for i in range(5)]
PREDICATES = [EX.p, EX.q, EX.r]
LABELS = ["A", "B"]
OBJECTS = [Literal(1), Literal(2), Literal("x"),
           Literal("3", datatype=XSD.string)] + NODES[:3]
UNIVERSE = [Triple(subject, predicate, obj)
            for subject in NODES
            for predicate in PREDICATES
            for obj in OBJECTS]


def constraints() -> st.SearchStrategy:
    return st.one_of(
        st.builds(lambda values: value_set(*values),
                  st.lists(st.sampled_from([1, 2, "x"]), min_size=1,
                           max_size=2, unique=True)),
        st.just(DatatypeConstraint(XSD.integer)),
        st.just(DatatypeConstraint(XSD.string)),
        # reference arcs make the reverse-reachability closure matter
        st.sampled_from([shape_ref(label) for label in LABELS]),
    )


def shapes() -> st.SearchStrategy:
    def build(arcs):
        return interleave_all(*[
            modifier(arc(predicate, constraint))
            for (predicate, constraint, modifier) in arcs
        ])

    modifiers = st.sampled_from([lambda e: e, star, optional, plus])
    return st.builds(
        build,
        st.lists(st.tuples(st.sampled_from(PREDICATES), constraints(),
                           modifiers),
                 min_size=1, max_size=3),
    )


def schemas() -> st.SearchStrategy[Schema]:
    return st.builds(
        lambda a, b: Schema({"A": a, "B": b}),
        shapes(), shapes(),
    )


def operations() -> st.SearchStrategy[list]:
    operation = st.one_of(
        st.tuples(st.just("add"), st.sampled_from(UNIVERSE)),
        st.tuples(st.just("remove"), st.sampled_from(UNIVERSE)),
        st.tuples(st.just("revalidate"), st.none()),
    )
    return st.lists(operation, min_size=1, max_size=12)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def _check_roundtrip(schema, initial, ops, jobs):
    graph = Graph(initial)
    validator = Validator(graph, schema, jobs=jobs)
    validator.validate_graph()

    def checkpoint():
        result = validator.revalidate()
        fresh = Validator(graph.copy(), schema).validate_graph()
        assert _verdicts(result.report) == _verdicts(fresh), (
            f"revalidate verdicts diverge from a fresh run after "
            f"{len(ops)} ops (jobs={jobs})"
        )
        assert result.report.typing == fresh.typing
        # the full report is canonically ordered like a fresh one
        assert [(e.node, e.label) for e in result.report.entries] \
            == [(e.node, e.label) for e in fresh.entries]

    for kind, triple in ops:
        if kind == "add":
            graph.add(triple)
        elif kind == "remove":
            graph.discard(triple)
        else:
            checkpoint()
    checkpoint()


class TestRevalidateEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(schema=schemas(),
           initial=st.frozensets(st.sampled_from(UNIVERSE), max_size=10),
           ops=operations())
    def test_serial_revalidate_matches_fresh_full_run(self, schema, initial, ops):
        _check_roundtrip(schema, initial, ops, jobs=1)

    @settings(max_examples=6, deadline=None)
    @given(schema=schemas(),
           initial=st.frozensets(st.sampled_from(UNIVERSE), max_size=10),
           ops=operations())
    def test_parallel_revalidate_matches_fresh_full_run(self, schema, initial, ops):
        _check_roundtrip(schema, initial, ops, jobs=2)

    @settings(max_examples=40, deadline=None)
    @given(schema=schemas(),
           initial=st.frozensets(st.sampled_from(UNIVERSE), max_size=10),
           ops=operations())
    def test_batched_mutations_revalidate_identically(self, schema, initial, ops):
        """The same edits applied through one batch journal entry."""
        graph = Graph(initial)
        validator = Validator(graph, schema)
        validator.validate_graph()
        with graph.batch():
            for kind, triple in ops:
                if kind == "add":
                    graph.add(triple)
                elif kind == "remove":
                    graph.discard(triple)
        result = validator.revalidate()
        fresh = Validator(graph.copy(), schema).validate_graph()
        assert _verdicts(result.report) == _verdicts(fresh)
        assert result.report.typing == fresh.typing
