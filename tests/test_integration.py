"""End-to-end integration tests across the whole stack.

Each test exercises a realistic pipeline: serialise data, re-parse it, load a
schema from ShExC, select nodes with a shape map, validate with different
engines, render reports and check that every layer agrees with the workload
generator's ground truth.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.rdf import Graph
from repro.shex import (
    BacktrackingEngine,
    DerivativeEngine,
    Schema,
    Validator,
    parse_shape_map,
    report_to_dict,
    schema_from_dict,
    schema_to_dict,
    serialize_shexc,
    summarize,
)
from repro.shex.analysis import analyze_schema
from repro.shex.sparql_gen import SparqlEngine
from repro.workloads import (
    generate_person_workload,
    generate_portal_workload,
    person_schema,
)


class TestPersonPipeline:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_person_workload(num_people=24, invalid_fraction=0.35,
                                        knows_probability=0.15, seed=21)

    def test_turtle_round_trip_preserves_verdicts(self, workload):
        text = workload.graph.serialize("turtle")
        reparsed = Graph.parse(text)
        validator = Validator(reparsed, workload.schema)
        assert set(validator.conforming_nodes("Person")) == set(workload.valid_nodes)

    def test_schema_round_trips_through_shexc_and_json(self, workload):
        schema = workload.schema
        via_shexc = Schema.from_shexc(serialize_shexc(schema))
        via_json = schema_from_dict(schema_to_dict(schema))
        for restored in (via_shexc, via_json):
            validator = Validator(workload.graph, restored)
            assert set(validator.conforming_nodes("Person")) == set(workload.valid_nodes)

    def test_both_complete_engines_agree_on_every_node(self, workload):
        derivative = Validator(workload.graph, workload.schema, engine=DerivativeEngine())
        backtracking = Validator(workload.graph, workload.schema,
                                 engine=BacktrackingEngine(budget=2_000_000))
        for node in workload.all_nodes:
            assert derivative.validate_node(node, "Person").conforms == \
                backtracking.validate_node(node, "Person").conforms, node

    def test_shape_map_plus_report_pipeline(self, workload):
        shape_map = parse_shape_map("{FOCUS foaf:age _}@<Person>")
        validator = Validator(workload.graph, workload.schema)
        report = validator.validate_map(shape_map.resolve(workload.graph))
        data = report_to_dict(report)
        conforming = {entry["node"] for entry in data["entries"] if entry["conforms"]}
        assert conforming == {node.n3() for node in workload.valid_nodes}
        assert summarize(report).endswith(")") or "conform" in summarize(report)


class TestPortalPipeline:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_portal_workload(num_datasets=18, invalid_fraction=0.3, seed=8)

    def test_schema_analysis_matches_structure(self, workload):
        report = analyze_schema(workload.schema)
        assert report.shape_count == 3
        assert not report.recursive
        assert report.is_sorbe

    def test_validation_of_all_shape_kinds(self, workload):
        validator = Validator(workload.graph, workload.schema)
        typing = validator.infer_typing(labels=["Dataset", "Publisher", "Distribution"])
        for dataset in workload.valid_datasets:
            assert typing.has(dataset, "Dataset")
        for publisher in workload.publishers:
            assert typing.has(publisher, "Publisher")
        for dataset in workload.invalid_datasets:
            assert not typing.has(dataset, "Dataset")

    def test_failure_reasons_are_informative(self, workload):
        validator = Validator(workload.graph, workload.schema)
        for dataset, injected in workload.invalid_datasets.items():
            entry = validator.validate_node(dataset, "Dataset")
            assert not entry.conforms
            assert entry.reason, f"no reason reported for {dataset} ({injected})"


class TestCliPipeline:
    def test_generate_then_validate_via_cli(self, tmp_path, capsys):
        data_path = tmp_path / "people.ttl"
        schema_path = tmp_path / "person.shex"
        exit_code = cli_main(["generate-workload", "--kind", "person", "--size", "12",
                              "--invalid-fraction", "0.25", "--seed", "5",
                              "--output", str(data_path)])
        assert exit_code == 0
        capsys.readouterr()
        schema_path.write_text(person_schema().to_shexc(), encoding="utf-8")

        exit_code = cli_main(["validate", "--data", str(data_path),
                              "--schema", str(schema_path),
                              "--shape", "Person", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1  # the generator injected invalid people
        conforming = sum(1 for entry in payload["entries"] if entry["conforms"])
        workload = generate_person_workload(num_people=12, invalid_fraction=0.25, seed=5)
        assert conforming == len(workload.valid_nodes)

    def test_cli_engines_agree(self, tmp_path, capsys):
        data_path = tmp_path / "people.ttl"
        schema_path = tmp_path / "person.shex"
        workload = generate_person_workload(num_people=10, invalid_fraction=0.3,
                                            knows_probability=0.1, seed=9)
        data_path.write_text(workload.graph.serialize("turtle"), encoding="utf-8")
        schema_path.write_text(person_schema().to_shexc(), encoding="utf-8")
        summaries = {}
        for engine in ("derivatives", "backtracking"):
            cli_main(["validate", "--data", str(data_path), "--schema", str(schema_path),
                      "--shape", "Person", "--engine", engine, "--format", "summary"])
            summaries[engine] = capsys.readouterr().out.strip()
        assert summaries["derivatives"] == summaries["backtracking"]


class TestSparqlEngineConsistency:
    def test_sparql_engine_matches_derivatives_on_non_recursive_portal_shapes(self):
        workload = generate_portal_workload(num_datasets=12, invalid_fraction=0.25, seed=4)
        # Distribution and Publisher are non-recursive and reference-free,
        # so the SPARQL engine must agree exactly with the derivative engine.
        derivative = Validator(workload.graph, workload.schema)
        sparql = Validator(workload.graph, workload.schema, engine=SparqlEngine())
        for label in ("Distribution", "Publisher"):
            nodes = workload.distributions if label == "Distribution" else workload.publishers
            for node in nodes:
                assert derivative.validate_node(node, label).conforms == \
                    sparql.validate_node(node, label).conforms, (node, label)
