"""Tests for the declarative semantics Sₙ[[e]] (language enumeration)."""

import pytest

from repro.rdf import EX, Literal, Triple
from repro.shex import (
    EMPTY,
    EPSILON,
    Arc,
    LanguageEnumerationError,
    PredicateSet,
    ShapeRef,
    arc,
    datatype,
    enumerate_language,
    interleave,
    language_size,
    optional,
    plus,
    star,
    value_set,
)
from repro.rdf import XSD
from repro.shex.typing import ShapeLabel

NODE = EX.n


def t(predicate, value) -> Triple:
    return Triple(NODE, predicate, Literal(value))


class TestBaseCases:
    def test_empty_has_no_graphs(self):
        assert enumerate_language(EMPTY, NODE) == frozenset()

    def test_epsilon_accepts_exactly_the_empty_graph(self):
        assert enumerate_language(EPSILON, NODE) == frozenset({frozenset()})

    def test_single_arc(self):
        language = enumerate_language(arc(EX.a, value_set(1)), NODE)
        assert language == frozenset({frozenset({t(EX.a, 1)})})

    def test_arc_with_several_values(self):
        language = enumerate_language(arc(EX.a, value_set(1, 2)), NODE)
        assert language == frozenset({
            frozenset({t(EX.a, 1)}),
            frozenset({t(EX.a, 2)}),
        })

    def test_arc_with_several_predicates(self):
        expression = Arc(PredicateSet([EX.a, EX.b]), value_set(1))
        language = enumerate_language(expression, NODE)
        assert language == frozenset({
            frozenset({t(EX.a, 1)}),
            frozenset({t(EX.b, 1)}),
        })


class TestCompositeCases:
    def test_example_7(self):
        """Example 7: Sₙ[[a→1 ‖ (b→{1,2})*]] has exactly four graphs."""
        expression = interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))
        language = enumerate_language(expression, NODE)
        assert language == frozenset({
            frozenset({t(EX.a, 1)}),
            frozenset({t(EX.a, 1), t(EX.b, 1)}),
            frozenset({t(EX.a, 1), t(EX.b, 2)}),
            frozenset({t(EX.a, 1), t(EX.b, 1), t(EX.b, 2)}),
        })
        assert language_size(expression, NODE) == 4

    def test_alternative(self):
        expression = arc(EX.a, value_set(1)) | arc(EX.b, value_set(1))
        language = enumerate_language(expression, NODE)
        assert language == frozenset({
            frozenset({t(EX.a, 1)}),
            frozenset({t(EX.b, 1)}),
        })

    def test_optional(self):
        language = enumerate_language(optional(arc(EX.a, value_set(1))), NODE)
        assert frozenset() in language
        assert frozenset({t(EX.a, 1)}) in language
        assert len(language) == 2

    def test_plus_requires_at_least_one(self):
        language = enumerate_language(plus(arc(EX.a, value_set(1, 2))), NODE)
        assert frozenset() not in language
        assert frozenset({t(EX.a, 1)}) in language
        assert frozenset({t(EX.a, 1), t(EX.a, 2)}) in language

    def test_star_includes_empty_graph(self):
        language = enumerate_language(star(arc(EX.a, value_set(1))), NODE)
        assert frozenset() in language
        assert frozenset({t(EX.a, 1)}) in language
        assert len(language) == 2

    def test_star_stabilises_because_graphs_are_sets(self):
        """A starred arc over k values accepts exactly 2^k graphs."""
        expression = star(arc(EX.a, value_set(1, 2, 3)))
        assert language_size(expression, NODE, max_star_unroll=10) == 8

    def test_unrolling_bound_truncates(self):
        expression = star(arc(EX.a, value_set(1, 2, 3)))
        truncated = enumerate_language(expression, NODE, max_star_unroll=1)
        # only zero or one repetition enumerated: 1 + 3 graphs
        assert len(truncated) == 4


class TestResourceSensitivity:
    """The ‖ operator consumes each triple once (see the module docstring)."""

    def test_duplicated_arc_requires_two_distinct_triples(self):
        expression = interleave(arc(EX.a, value_set(1, 2)), arc(EX.a, value_set(1, 2)),)
        language = enumerate_language(expression, NODE)
        # the singleton graphs are NOT accepted: both branches need an arc
        assert frozenset({t(EX.a, 1)}) not in language
        assert frozenset({t(EX.a, 1), t(EX.a, 2)}) in language

    def test_enumeration_agrees_with_both_matchers_on_the_overlap_case(self):
        from repro.shex import matches, matches_backtracking

        expression = interleave(arc(EX.a, value_set(1)), arc(EX.a, value_set(1)))
        singleton = [t(EX.a, 1)]
        assert not matches(expression, singleton)
        assert not matches_backtracking(expression, singleton)
        assert frozenset(singleton) not in enumerate_language(expression, NODE)


class TestErrors:
    def test_datatype_arcs_are_not_enumerable(self):
        with pytest.raises(LanguageEnumerationError):
            enumerate_language(arc(EX.a, datatype(XSD.integer)), NODE)

    def test_wildcard_arcs_are_not_enumerable(self):
        with pytest.raises(LanguageEnumerationError):
            enumerate_language(arc(EX.a), NODE)

    def test_shape_reference_arcs_are_not_enumerable(self):
        expression = Arc(PredicateSet.single(EX.a), ShapeRef(ShapeLabel("S")))
        with pytest.raises(LanguageEnumerationError):
            enumerate_language(expression, NODE)

    def test_wildcard_predicates_are_not_enumerable(self):
        expression = Arc(PredicateSet(any_predicate=True), value_set(1))
        with pytest.raises(LanguageEnumerationError):
            enumerate_language(expression, NODE)

    def test_negative_unroll_rejected(self):
        with pytest.raises(ValueError):
            enumerate_language(EPSILON, NODE, max_star_unroll=-1)
