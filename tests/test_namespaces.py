"""Unit tests for namespaces and the prefix manager."""

import pytest

from repro.rdf import FOAF, IRI, Namespace, NamespaceManager, RDF, XSD
from repro.rdf.errors import NamespaceError


class TestNamespace:
    def test_attribute_access_builds_iris(self):
        ns = Namespace("http://example.org/vocab#")
        assert ns.thing == IRI("http://example.org/vocab#thing")

    def test_item_access_builds_iris(self):
        ns = Namespace("http://example.org/vocab#")
        assert ns["has-dash"] == IRI("http://example.org/vocab#has-dash")

    def test_well_known_vocabularies(self):
        assert FOAF.name == IRI("http://xmlns.com/foaf/0.1/name")
        assert XSD.integer == IRI("http://www.w3.org/2001/XMLSchema#integer")
        assert RDF.type == IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

    def test_containment(self):
        assert FOAF.knows in FOAF
        assert XSD.integer not in FOAF

    def test_local_name(self):
        assert FOAF.local_name(FOAF.knows) == "knows"
        with pytest.raises(NamespaceError):
            FOAF.local_name(XSD.integer)

    def test_equality(self):
        assert Namespace("http://a/") == Namespace("http://a/")
        assert Namespace("http://a/") != Namespace("http://b/")

    def test_rejects_empty_base(self):
        with pytest.raises(NamespaceError):
            Namespace("")

    def test_private_attribute_access_raises(self):
        with pytest.raises(AttributeError):
            FOAF._private


class TestNamespaceManager:
    def test_bind_and_expand(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.expand("ex:thing") == IRI("http://example.org/thing")

    def test_expand_unknown_prefix(self):
        manager = NamespaceManager()
        with pytest.raises(NamespaceError):
            manager.expand("nope:thing")

    def test_expand_requires_colon(self):
        manager = NamespaceManager()
        with pytest.raises(NamespaceError):
            manager.expand("no-colon")

    def test_empty_prefix(self):
        manager = NamespaceManager()
        manager.bind("", "http://example.org/")
        assert manager.expand(":thing") == IRI("http://example.org/thing")

    def test_compact_prefers_longest_base(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        manager.bind("sub", "http://example.org/sub/")
        assert manager.compact(IRI("http://example.org/sub/item")) == "sub:item"
        assert manager.compact(IRI("http://example.org/item")) == "ex:item"

    def test_compact_returns_none_when_no_prefix_matches(self):
        manager = NamespaceManager()
        assert manager.compact(IRI("http://elsewhere.org/x")) is None

    def test_compact_skips_unsafe_local_names(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.compact(IRI("http://example.org/path/with/slashes")) is None

    def test_defaults_include_common_vocabularies(self):
        manager = NamespaceManager(bind_defaults=True)
        assert manager.expand("foaf:name") == FOAF.name
        assert manager.compact(XSD.integer) == "xsd:integer"

    def test_rebind_replaces_by_default(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://one.org/")
        manager.bind("ex", "http://two.org/")
        assert manager.expand("ex:x") == IRI("http://two.org/x")

    def test_rebind_with_replace_false_raises(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://one.org/")
        with pytest.raises(NamespaceError):
            manager.bind("ex", "http://two.org/", replace=False)

    def test_copy_is_independent(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://one.org/")
        clone = manager.copy()
        clone.bind("other", "http://other.org/")
        assert "other" in clone
        assert "other" not in manager

    def test_len_and_contains(self):
        manager = NamespaceManager()
        assert len(manager) == 0
        manager.bind("ex", "http://one.org/")
        assert len(manager) == 1
        assert "ex" in manager
        assert "nope" not in manager

    def test_namespace_lookup(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://one.org/")
        assert manager.namespace("ex").base == "http://one.org/"
        with pytest.raises(NamespaceError):
            manager.namespace("missing")
