"""Unit tests for node constraints (value sets, datatypes, node kinds, facets…)."""

import pytest

from repro.rdf import BNode, EX, FOAF, IRI, Literal, XSD
from repro.shex import (
    AnyValue,
    ConstraintAnd,
    ConstraintNot,
    ConstraintOr,
    DatatypeConstraint,
    Facets,
    IRIStem,
    LanguageTag,
    NodeKind,
    NodeKindConstraint,
    PredicateSet,
    ShapeRef,
    ValueSet,
    datatype,
    value_set,
)
from repro.shex.typing import ShapeLabel


class TestAnyValue:
    def test_matches_every_term_kind(self):
        constraint = AnyValue()
        assert constraint.matches(EX.thing)
        assert constraint.matches(BNode("b"))
        assert constraint.matches(Literal("x"))

    def test_describe(self):
        assert AnyValue().describe() == "."


class TestValueSet:
    def test_matches_members_only(self):
        constraint = value_set(1, 2)
        assert constraint.matches(Literal(1))
        assert constraint.matches(Literal(2))
        assert not constraint.matches(Literal(3))
        assert not constraint.matches(Literal("1"))  # xsd:string ≠ xsd:integer

    def test_mixed_term_kinds(self):
        constraint = ValueSet([EX.red, Literal("green")])
        assert constraint.matches(EX.red)
        assert constraint.matches(Literal("green"))
        assert not constraint.matches(EX.green)

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            ValueSet([object()])

    def test_equality_and_iteration(self):
        assert value_set(1, 2) == value_set(2, 1)
        assert len(value_set(1, 2)) == 2
        assert list(value_set(2, 1))[0] == Literal(1)  # deterministic order

    def test_describe_lists_members(self):
        assert "1" in value_set(1).describe()


class TestDatatypeConstraint:
    def test_matching_datatype(self):
        constraint = DatatypeConstraint(XSD.integer)
        assert constraint.matches(Literal(42))
        assert not constraint.matches(Literal("42"))
        assert not constraint.matches(EX.iri)

    def test_derived_types_accepted(self):
        constraint = DatatypeConstraint(XSD.integer)
        assert constraint.matches(Literal("7", datatype=XSD.int))

    def test_invalid_lexical_rejected(self):
        constraint = DatatypeConstraint(XSD.integer)
        assert not constraint.matches(Literal("seven", datatype=XSD.integer))

    def test_numeric_facets(self):
        constraint = datatype(XSD.integer, min_inclusive=0, max_inclusive=120)
        assert constraint.matches(Literal(30))
        assert not constraint.matches(Literal(-1))
        assert not constraint.matches(Literal(121))

    def test_exclusive_facets(self):
        constraint = datatype(XSD.integer, min_exclusive=0, max_exclusive=10)
        assert constraint.matches(Literal(5))
        assert not constraint.matches(Literal(0))
        assert not constraint.matches(Literal(10))

    def test_string_facets(self):
        constraint = datatype(XSD.string, min_length=2, max_length=4)
        assert constraint.matches(Literal("abc"))
        assert not constraint.matches(Literal("a"))
        assert not constraint.matches(Literal("abcde"))

    def test_length_facet(self):
        constraint = datatype(XSD.string, length=3)
        assert constraint.matches(Literal("abc"))
        assert not constraint.matches(Literal("ab"))

    def test_pattern_facet(self):
        constraint = datatype(XSD.string, pattern=r"^[A-Z][a-z]+$")
        assert constraint.matches(Literal("Hello"))
        assert not constraint.matches(Literal("hello"))

    def test_numeric_facet_on_non_numeric_literal_fails(self):
        constraint = datatype(XSD.string, min_inclusive=1)
        assert not constraint.matches(Literal("text"))

    def test_describe_mentions_facets(self):
        constraint = datatype(XSD.integer, min_inclusive=0)
        assert "min_inclusive" in constraint.describe()


class TestFacets:
    def test_trivial_facets(self):
        assert Facets().is_trivial()
        assert not Facets(min_length=1).is_trivial()

    def test_check_combines_all_conditions(self):
        facets = Facets(min_length=2, pattern="a")
        assert facets.check(Literal("abc"))
        assert not facets.check(Literal("a"))      # too short
        assert not facets.check(Literal("bcd"))    # pattern missing


class TestNodeKinds:
    def test_iri_kind(self):
        constraint = NodeKindConstraint(NodeKind.IRI)
        assert constraint.matches(EX.thing)
        assert not constraint.matches(BNode("b"))
        assert not constraint.matches(Literal("x"))

    def test_bnode_kind(self):
        constraint = NodeKindConstraint(NodeKind.BNODE)
        assert constraint.matches(BNode("b"))
        assert not constraint.matches(EX.thing)

    def test_literal_kind(self):
        constraint = NodeKindConstraint(NodeKind.LITERAL)
        assert constraint.matches(Literal("x"))
        assert not constraint.matches(EX.thing)

    def test_nonliteral_kind(self):
        constraint = NodeKindConstraint(NodeKind.NONLITERAL)
        assert constraint.matches(EX.thing)
        assert constraint.matches(BNode("b"))
        assert not constraint.matches(Literal("x"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NodeKindConstraint("resource")

    def test_literal_kind_with_facets(self):
        constraint = NodeKindConstraint(NodeKind.LITERAL, Facets(min_length=3))
        assert constraint.matches(Literal("abc"))
        assert not constraint.matches(Literal("ab"))

    def test_iri_kind_with_pattern_facet(self):
        constraint = NodeKindConstraint(NodeKind.IRI, Facets(pattern="example"))
        assert constraint.matches(EX.thing)
        assert not constraint.matches(IRI("http://other.org/x"))


class TestStemAndLanguage:
    def test_iri_stem(self):
        constraint = IRIStem("http://example.org/")
        assert constraint.matches(EX.anything)
        assert not constraint.matches(IRI("http://other.org/x"))
        assert not constraint.matches(Literal("http://example.org/x"))

    def test_language_tag(self):
        constraint = LanguageTag("en")
        assert constraint.matches(Literal("colour", lang="en"))
        assert constraint.matches(Literal("color", lang="en-US"))
        assert not constraint.matches(Literal("couleur", lang="fr"))
        assert not constraint.matches(Literal("plain"))


class TestBooleanCombinators:
    def test_and(self):
        constraint = ConstraintAnd([DatatypeConstraint(XSD.integer),
                                    datatype(XSD.integer, min_inclusive=0)])
        assert constraint.matches(Literal(5))
        assert not constraint.matches(Literal(-5))

    def test_or(self):
        constraint = ConstraintOr([value_set(1), value_set(2)])
        assert constraint.matches(Literal(1))
        assert constraint.matches(Literal(2))
        assert not constraint.matches(Literal(3))

    def test_not(self):
        constraint = ConstraintNot(value_set(1))
        assert not constraint.matches(Literal(1))
        assert constraint.matches(Literal(2))

    def test_describe(self):
        assert "AND" in ConstraintAnd([AnyValue(), AnyValue()]).describe()
        assert "OR" in ConstraintOr([AnyValue(), AnyValue()]).describe()
        assert "NOT" in ConstraintNot(AnyValue()).describe()


class TestShapeRef:
    def test_cannot_be_matched_locally(self):
        constraint = ShapeRef(ShapeLabel("Person"))
        with pytest.raises(TypeError):
            constraint.matches(EX.bob)

    def test_describe(self):
        assert ShapeRef(ShapeLabel("Person")).describe() == "@Person"


class TestPredicateSet:
    def test_single(self):
        predicates = PredicateSet.single(FOAF.name)
        assert predicates.matches(FOAF.name)
        assert not predicates.matches(FOAF.age)
        assert predicates.sample() == FOAF.name

    def test_multiple(self):
        predicates = PredicateSet([FOAF.name, FOAF.age])
        assert predicates.matches(FOAF.name)
        assert predicates.matches(FOAF.age)
        assert not predicates.matches(FOAF.knows)

    def test_stem(self):
        predicates = PredicateSet(stem="http://xmlns.com/foaf/0.1/")
        assert predicates.matches(FOAF.name)
        assert not predicates.matches(EX.other)
        assert predicates.sample() is None

    def test_any(self):
        predicates = PredicateSet(any_predicate=True)
        assert predicates.matches(EX.whatever)
        assert predicates.describe() == "<any>"

    def test_needs_at_least_one_specification(self):
        with pytest.raises(ValueError):
            PredicateSet()

    def test_rejects_non_iri_predicates(self):
        with pytest.raises(TypeError):
            PredicateSet([Literal("not an IRI")])

    def test_equality_and_hash(self):
        assert PredicateSet([FOAF.name]) == PredicateSet.single(FOAF.name)
        assert hash(PredicateSet([FOAF.name])) == hash(PredicateSet.single(FOAF.name))
        assert PredicateSet([FOAF.name]) != PredicateSet([FOAF.age])
