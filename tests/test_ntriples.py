"""Unit tests for the N-Triples parser and serialiser."""

import pytest

from repro.rdf import BNode, EX, Graph, Literal, Triple, XSD
from repro.rdf.errors import ParseError
from repro.rdf.ntriples import (
    escape_string,
    iter_ntriples,
    parse_ntriples,
    serialize_ntriples,
    unescape_string,
)


class TestEscaping:
    def test_round_trip_simple(self):
        assert unescape_string(escape_string('say "hi"\n')) == 'say "hi"\n'

    def test_unicode_escapes(self):
        assert unescape_string("caf\\u00e9") == "café"
        assert unescape_string("\\U0001F600") == "😀"

    def test_invalid_escape_raises(self):
        with pytest.raises(ParseError):
            unescape_string("\\q")
        with pytest.raises(ParseError):
            unescape_string("dangling\\")

    def test_tab_and_backslash(self):
        assert escape_string("a\tb\\c") == "a\\tb\\\\c"


class TestParsing:
    def test_simple_triple(self):
        graph = parse_ntriples(
            '<http://example.org/s> <http://example.org/p> "hello" .\n'
        )
        assert Triple(EX.s, EX.p, Literal("hello")) in graph

    def test_iri_object(self):
        graph = parse_ntriples("<http://example.org/s> <http://example.org/p> <http://example.org/o> .")
        assert Triple(EX.s, EX.p, EX.o) in graph

    def test_blank_nodes(self):
        graph = parse_ntriples("_:a <http://example.org/p> _:b .")
        triple = next(iter(graph))
        assert triple.subject == BNode("a")
        assert triple.object == BNode("b")

    def test_typed_literal(self):
        graph = parse_ntriples(
            '<http://example.org/s> <http://example.org/p> '
            '"42"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        triple = next(iter(graph))
        assert triple.object == Literal("42", datatype=XSD.integer)

    def test_language_tagged_literal(self):
        graph = parse_ntriples('<http://example.org/s> <http://example.org/p> "chat"@fr .')
        assert next(iter(graph)).object == Literal("chat", lang="fr")

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment
        <http://example.org/s> <http://example.org/p> "x" .

        # another
        """
        assert len(parse_ntriples(text)) == 1

    def test_escaped_literal_content(self):
        graph = parse_ntriples(
            '<http://example.org/s> <http://example.org/p> "line1\\nline2\\t\\"q\\"" .'
        )
        assert next(iter(graph)).object.lexical == 'line1\nline2\t"q"'

    def test_trailing_comment_after_dot(self):
        graph = parse_ntriples('<http://example.org/s> <http://example.org/p> "x" . # trailing')
        assert len(graph) == 1

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples('<http://example.org/s> <http://example.org/p> "x"')

    def test_literal_subject_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples('"literal" <http://example.org/p> "x" .')

    def test_bnode_predicate_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples('<http://example.org/s> _:p "x" .')

    def test_error_reports_line_number(self):
        text = '<http://example.org/s> <http://example.org/p> "ok" .\nbroken line .'
        with pytest.raises(ParseError) as info:
            parse_ntriples(text)
        assert info.value.line == 2

    def test_iter_ntriples_is_lazy(self):
        text = '<http://example.org/s> <http://example.org/p> "x" .\n' * 3
        iterator = iter_ntriples(text)
        assert next(iterator).object == Literal("x")


class TestSerialisation:
    def test_round_trip(self):
        graph = Graph([
            Triple(EX.s, EX.p, Literal("hello\nworld")),
            Triple(EX.s, EX.p, Literal(42)),
            Triple(EX.s, EX.q, Literal("chat", lang="fr")),
            Triple(BNode("b1"), EX.p, EX.o),
        ])
        text = serialize_ntriples(graph)
        assert parse_ntriples(text) == graph

    def test_output_is_sorted_and_terminated(self):
        graph = Graph([
            Triple(EX.b, EX.p, Literal(1)),
            Triple(EX.a, EX.p, Literal(1)),
        ])
        lines = serialize_ntriples(graph).strip().splitlines()
        assert lines[0].startswith("<http://example.org/a>")
        assert all(line.endswith(" .") for line in lines)

    def test_empty_graph_serialises_to_empty_string(self):
        assert serialize_ntriples(Graph()) == ""

    def test_plain_string_has_no_datatype_suffix(self):
        graph = Graph([Triple(EX.s, EX.p, Literal("plain"))])
        assert "^^" not in serialize_ntriples(graph)
