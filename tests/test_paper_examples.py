"""End-to-end reproduction of every numbered example in the paper.

Each test cites the example it reproduces; together they are the executable
record that this implementation behaves exactly as the paper describes.
"""

import pytest

from repro.rdf import EX, FOAF, Graph, Literal, Triple, decompositions
from repro.shex import (
    BacktrackingEngine,
    DerivativeEngine,
    Validator,
    arc,
    derivative,
    derivative_trace,
    enumerate_language,
    interleave,
    matches,
    matches_backtracking,
    nullable,
    parse_shexc,
    star,
    value_set,
)
from repro.workloads import paper_example_graph, person_schema

NODE = EX.n


class TestExample1And2:
    """Examples 1–2: the Person schema and which nodes conform."""

    def test_example_2_verdicts_with_both_engines(self, engine_name):
        graph = paper_example_graph()
        schema = person_schema()
        validator = Validator(graph, schema, engine=engine_name)
        assert validator.conforming_nodes("Person") == [EX.bob, EX.john]

    def test_mary_fails_because_of_the_duplicate_age(self):
        graph = paper_example_graph()
        entry = Validator(graph, person_schema()).validate_node(EX.mary, "Person")
        assert not entry.conforms


class TestExample3:
    """Example 3: the decomposition of a 3-triple graph has 8 pairs."""

    def test_decomposition_matches_the_listing(self):
        a1 = Triple(NODE, EX.a, Literal(1))
        b1 = Triple(NODE, EX.b, Literal(1))
        b2 = Triple(NODE, EX.b, Literal(2))
        graph = frozenset({a1, b1, b2})
        pairs = set(decompositions(graph))
        expected = {
            (frozenset(), frozenset({a1, b1, b2})),
            (frozenset({a1}), frozenset({b1, b2})),
            (frozenset({b1}), frozenset({a1, b2})),
            (frozenset({b2}), frozenset({a1, b1})),
            (frozenset({a1, b1}), frozenset({b2})),
            (frozenset({a1, b2}), frozenset({b1})),
            (frozenset({b1, b2}), frozenset({a1})),
            (frozenset({a1, b1, b2}), frozenset()),
        }
        assert pairs == expected


class TestExample4:
    """Example 4 / Section 3: the SPARQL rendition of the Person shape."""

    def test_generated_query_reproduces_the_verdicts(self):
        from repro.shex.sparql_gen import shape_to_sparql_ask
        from repro.sparql import ask

        graph = paper_example_graph()
        expression = person_schema().expression("Person")
        verdicts = {
            node: ask(graph, shape_to_sparql_ask(expression, node,
                                                 approximate_references=True))
            for node in (EX.john, EX.bob, EX.mary)
        }
        assert verdicts == {EX.john: True, EX.bob: True, EX.mary: False}


class TestExamples5To7:
    """Examples 5–7: the running regular shape expression and its language."""

    @pytest.fixture
    def running_expression(self):
        # a→1 ‖ (b→{1,2})*
        return interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))

    def test_example_5_shape_accepts_one_a_and_b_arcs(self, running_expression):
        accepted = [
            [Triple(NODE, EX.a, Literal(1))],
            [Triple(NODE, EX.a, Literal(1)), Triple(NODE, EX.b, Literal(1))],
        ]
        rejected = [
            [],
            [Triple(NODE, EX.b, Literal(1))],
            [Triple(NODE, EX.a, Literal(1)), Triple(NODE, EX.b, Literal(7))],
        ]
        for triples in accepted:
            assert matches(running_expression, triples)
        for triples in rejected:
            assert not matches(running_expression, triples)

    def test_example_6_foaf_shape_in_shexc(self):
        schema = parse_shexc("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
            <Example> {
              foaf:age xsd:integer
              , foaf:name xsd:string+
            }
        """)
        expression = schema.expression("Example")
        good = [
            Triple(NODE, FOAF.age, Literal(30)),
            Triple(NODE, FOAF.name, Literal("Ada")),
        ]
        assert matches(expression, good)
        assert not matches(expression, good[:1])  # name is mandatory

    def test_example_7_language(self, running_expression):
        language = enumerate_language(running_expression, NODE)
        a1 = Triple(NODE, EX.a, Literal(1))
        b1 = Triple(NODE, EX.b, Literal(1))
        b2 = Triple(NODE, EX.b, Literal(2))
        assert language == frozenset({
            frozenset({a1}),
            frozenset({a1, b1}),
            frozenset({a1, b2}),
            frozenset({a1, b1, b2}),
        })


class TestExample8:
    """Example 8 / Figure 2: backtracking matches the 3-triple neighbourhood."""

    def test_backtracking_accepts_and_counts_decompositions(self):
        expression = interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))
        triples = frozenset({
            Triple(NODE, EX.a, Literal(1)),
            Triple(NODE, EX.b, Literal(1)),
            Triple(NODE, EX.b, Literal(2)),
        })
        engine = BacktrackingEngine()
        result = engine.match_neighbourhood(expression, triples)
        assert result.matched
        assert result.stats.decompositions > 0  # the algorithm decomposes the graph


class TestExample9:
    """Example 9: ∂⟨n,a,1⟩(a→1 ‖ (b→{1,2})*) = (b→{1,2})*."""

    def test_derivative_value(self):
        expression = interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))
        assert derivative(expression, Triple(NODE, EX.a, Literal(1))) == \
            star(arc(EX.b, value_set(1, 2)))


class TestExample10:
    """Example 10: derivatives can grow in size."""

    def test_growth_for_an_expression_that_owes_an_arc(self):
        from repro.shex import expression_size

        # the paper describes an expression that, after consuming an `a` arc,
        # still owes a `b` arc before returning to the star; the interleave
        # version (a→{1,2} ‖ b→{1,2})* exhibits exactly the derivative shown:
        # b→{1,2} ‖ (a→{1,2} ‖ b→{1,2})*
        expression = star(interleave(arc(EX.a, value_set(1, 2)), arc(EX.b, value_set(1, 2))))
        result = derivative(expression, Triple(NODE, EX.a, Literal(1)))
        assert result == interleave(arc(EX.b, value_set(1, 2)), expression)
        assert expression_size(result) > expression_size(expression)


class TestExamples11And12:
    """Examples 11–12: the derivative matching traces."""

    @pytest.fixture
    def expression(self):
        return interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))

    def test_example_11_accepting_trace(self, expression):
        triples = [
            Triple(NODE, EX.a, Literal(1)),
            Triple(NODE, EX.b, Literal(1)),
            Triple(NODE, EX.b, Literal(2)),
        ]
        steps = derivative_trace(expression, triples)
        b_star = star(arc(EX.b, value_set(1, 2)))
        assert [after for _, after in steps] == [b_star, b_star, b_star]
        assert nullable(steps[-1][1])
        assert matches(expression, triples)

    def test_example_12_rejecting_trace(self, expression):
        from repro.shex import EMPTY

        triples = [
            Triple(NODE, EX.a, Literal(1)),
            Triple(NODE, EX.a, Literal(2)),
            Triple(NODE, EX.b, Literal(1)),
        ]
        steps = derivative_trace(expression, triples)
        assert steps[1][1] is EMPTY
        assert not matches(expression, triples)
        assert not matches_backtracking(expression, triples)


class TestExample13:
    """Example 13: the recursive schema p ↦ a→1 ‖ (b→{1,2})+ ‖ (c→@p)*."""

    @pytest.fixture
    def schema(self):
        return parse_shexc("""
            PREFIX ex: <http://example.org/>
            <p> {
              ex:a [ 1 ] ,
              ex:b [ 1 2 ] + ,
              ex:c @<p> *
            }
        """)

    def test_conforming_and_non_conforming_nodes(self, schema, engine_name):
        graph = Graph()
        graph.add(Triple(EX.good, EX.a, Literal(1)))
        graph.add(Triple(EX.good, EX.b, Literal(1)))
        graph.add(Triple(EX.good, EX.c, EX.child))
        graph.add(Triple(EX.child, EX.a, Literal(1)))
        graph.add(Triple(EX.child, EX.b, Literal(2)))
        graph.add(Triple(EX.bad, EX.a, Literal(1)))       # no b arc at all
        validator = Validator(graph, schema, engine=engine_name)
        assert validator.validate_node(EX.good, "p").conforms
        assert validator.validate_node(EX.child, "p").conforms
        assert not validator.validate_node(EX.bad, "p").conforms

    def test_reference_to_non_conforming_child_fails(self, schema):
        graph = Graph()
        graph.add(Triple(EX.parent, EX.a, Literal(1)))
        graph.add(Triple(EX.parent, EX.b, Literal(1)))
        graph.add(Triple(EX.parent, EX.c, EX.brokenchild))
        graph.add(Triple(EX.brokenchild, EX.a, Literal(1)))  # missing b
        assert not Validator(graph, schema).validate_node(EX.parent, "p").conforms


class TestExample14:
    """Example 14: the recursive Person schema, including cyclic data."""

    def test_schema_matches_example_1(self):
        schema = person_schema()
        graph = Graph()
        graph.add(Triple(EX.ada, FOAF.age, Literal(36)))
        graph.add(Triple(EX.ada, FOAF.name, Literal("Ada")))
        validator = Validator(graph, schema)
        assert validator.validate_node(EX.ada, "Person").conforms

    def test_cycles_terminate(self, engine_name):
        graph = Graph()
        for person, friend, name in ((EX.a, EX.b, "A"), (EX.b, EX.a, "B")):
            graph.add(Triple(person, FOAF.age, Literal(40)))
            graph.add(Triple(person, FOAF.name, Literal(name)))
            graph.add(Triple(person, FOAF.knows, friend))
        validator = Validator(graph, person_schema(), engine=engine_name)
        typing = validator.infer_typing()
        assert typing.has(EX.a, "Person")
        assert typing.has(EX.b, "Person")


class TestHeadlineClaim:
    """Section 8's empirical observation: derivatives do far less work."""

    def test_derivatives_do_less_work_than_backtracking_on_rejection(self):
        expression = interleave(arc(EX.a, value_set(1)),
                                star(arc(EX.b, value_set(*range(1, 9)))))
        triples = frozenset(
            {Triple(NODE, EX.a, Literal(1)), Triple(NODE, EX.a, Literal(2))}
            | {Triple(NODE, EX.b, Literal(i)) for i in range(1, 7)}
        )
        derivative_result = DerivativeEngine().match_neighbourhood(expression, triples)
        backtracking_result = BacktrackingEngine().match_neighbourhood(expression, triples)
        assert derivative_result.matched == backtracking_result.matched is False
        # the derivative engine looked at each triple at most once; the
        # backtracking engine explored orders of magnitude more states
        assert derivative_result.stats.derivative_steps <= 4 * len(triples)
        assert backtracking_result.stats.decompositions > \
            50 * derivative_result.stats.derivative_steps
