"""Tests for parallel bulk validation (Validator(jobs=N)) and its plumbing."""

from __future__ import annotations

import pickle

import pytest

from repro.rdf import EX, Graph
from repro.rdf.errors import GraphError
from repro.rdf.namespaces import FOAF
from repro.rdf.terms import Literal, Triple
from repro.shex import BacktrackingEngine, Validator
from repro.shex.schema import ValidationContext
from repro.shex.typing import ShapeLabel
from repro.workloads import (
    generate_community_workload,
    generate_person_workload,
    knows_cycle_graph,
    paper_example_graph,
    person_schema,
)


def verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


class TestNeighbourhoodSnapshot:
    def test_snapshot_matches_graph_neighbourhoods(self):
        graph = paper_example_graph()
        snapshot = graph.snapshot()
        for node in graph.nodes():
            assert snapshot.neighbourhood(node) == graph.neighbourhood(node)
            assert snapshot.neighbourhood_ordered(node) == \
                graph.neighbourhood_ordered(node)

    def test_snapshot_is_picklable(self):
        graph = paper_example_graph()
        snapshot = graph.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert len(clone) == len(snapshot)
        for node in graph.nodes():
            assert clone.neighbourhood(node) == graph.neighbourhood(node)

    def test_lookup_outside_the_snapshot_raises(self):
        snapshot = paper_example_graph().snapshot(nodes=[EX.john])
        with pytest.raises(GraphError):
            snapshot.neighbourhood(EX.bob)

    def test_snapshot_records_empty_neighbourhoods_explicitly(self):
        snapshot = paper_example_graph().snapshot(nodes=[EX.john, EX.phantom])
        assert snapshot.neighbourhood(EX.phantom) == frozenset()


class TestSettledVerdictProtocol:
    def test_seeded_verdicts_are_consulted(self):
        graph = paper_example_graph()
        schema = person_schema()
        validator = Validator(graph, schema)
        context = ValidationContext(graph, schema,
                                    validator.engine.match_neighbourhood)
        label = ShapeLabel("Person")
        context.seed_settled(confirmed=[(EX.bob, label)])
        assert context.is_confirmed(EX.bob, label)
        context.seed_settled(failed=[(EX.mary, label)])
        assert context.is_failed(EX.mary, label)

    def test_settled_verdicts_round_trip(self):
        graph = paper_example_graph()
        schema = person_schema()
        validator = Validator(graph, schema)
        context = ValidationContext(graph, schema,
                                    validator.engine.match_neighbourhood)
        for node in (EX.john, EX.bob, EX.mary):
            context.check_reference(node, "Person")
        confirmed, failed = context.settled_verdicts()
        other = ValidationContext(graph, schema,
                                  validator.engine.match_neighbourhood)
        other.seed_settled(confirmed, failed)
        label = ShapeLabel("Person")
        assert other.is_confirmed(EX.john, label)
        assert other.is_confirmed(EX.bob, label)
        assert other.is_failed(EX.mary, label)

    def test_provisional_state_is_not_exported(self):
        # a context mid-validation would hold provisional entries; a settled
        # export straight after a clean run contains only definitive pairs
        graph, _ = knows_cycle_graph(4)
        schema = person_schema()
        validator = Validator(graph, schema)
        context = ValidationContext(graph, schema,
                                    validator.engine.match_neighbourhood)
        head = EX.cycle0
        assert context.check_reference(head, "Person").matched
        confirmed, failed = context.settled_verdicts()
        assert failed == ()
        # the whole cycle settled together once the outer frame resolved
        assert {node for node, _ in confirmed} == set(graph.nodes())


class TestParallelValidateGraph:
    def test_paper_example_matches_serial(self):
        graph = paper_example_graph()
        schema = person_schema()
        serial = Validator(graph, schema).validate_graph()
        parallel = Validator(graph, schema, jobs=2).validate_graph()
        assert verdicts(parallel) == verdicts(serial)
        # report ordering is canonical in both paths
        assert [(e.node, str(e.label)) for e in parallel.entries] == \
            [(e.node, str(e.label)) for e in serial.entries]
        assert parallel.typing == serial.typing

    def test_community_workload_matches_serial_and_ground_truth(self):
        workload = generate_community_workload(
            num_communities=4, people_per_community=6, seed=3)
        serial = Validator(workload.graph, workload.schema, cache=True)
        parallel = Validator(workload.graph, workload.schema, cache=True, jobs=2)
        serial_verdicts = verdicts(serial.validate_graph())
        parallel_verdicts = verdicts(parallel.validate_graph())
        assert parallel_verdicts == serial_verdicts
        valid = set(workload.valid_nodes)
        for node in workload.all_nodes:
            assert parallel_verdicts[(node, "Person")] == (node in valid)

    def test_giant_scc_degenerates_to_serial(self):
        # one strongly-connected component: nothing to parallelise, and the
        # scheduler must fall back gracefully instead of deadlocking or
        # paying for an idle pool
        graph, _ = knows_cycle_graph(8)
        validator = Validator(graph, person_schema(), jobs=4)
        report = validator.validate_graph()
        assert len(report) == 8
        assert report.conforms

    def test_disconnected_subjects_validate_in_parallel(self):
        graph = Graph()
        for i in range(6):
            node = EX[f"solo{i}"]
            graph.add(Triple(node, FOAF.age, Literal(20 + i)))
            graph.add(Triple(node, FOAF.name, Literal(f"Solo {i}")))
        report = Validator(graph, person_schema(), jobs=2).validate_graph()
        assert report.conforms
        assert len(report) == 6

    def test_mutation_then_revalidate_with_jobs(self):
        workload = generate_person_workload(num_people=12, seed=5)
        validator = Validator(workload.graph, workload.schema, cache=True, jobs=2)
        first = validator.validate_graph()
        victim = workload.valid_nodes[0]
        assert first.entry_for(victim).conforms
        # a second age arc violates the exactly-one cardinality
        workload.graph.add(Triple(victim, FOAF.age, Literal(999)))
        second = validator.validate_graph()
        assert not second.entry_for(victim).conforms
        # and removing it again restores conformance (generation counter)
        workload.graph.discard(Triple(victim, FOAF.age, Literal(999)))
        third = validator.validate_graph()
        assert third.entry_for(victim).conforms

    def test_backtracking_engine_agrees_in_parallel(self):
        workload = generate_community_workload(
            num_communities=3, people_per_community=4, seed=4)
        derivative = Validator(workload.graph, workload.schema, cache=True)
        backtracking = Validator(workload.graph, workload.schema,
                                 engine="backtracking", budget=5_000_000, jobs=2)
        assert verdicts(backtracking.validate_graph()) == \
            verdicts(derivative.validate_graph())

    def test_parallel_verdicts_merge_into_shared_context(self):
        workload = generate_person_workload(num_people=10, seed=6)
        validator = Validator(workload.graph, workload.schema, cache=True, jobs=2)
        validator.validate_graph()
        context = validator._bulk_context()
        confirmed, failed = context.settled_verdicts()
        label = ShapeLabel("Person")
        for node in workload.valid_nodes:
            assert (node, label) in confirmed
        for node in workload.invalid_nodes:
            assert (node, label) in failed

    def test_jobs_argument_overrides_the_default(self):
        graph = paper_example_graph()
        serial = Validator(graph, person_schema())
        report = serial.validate_graph(jobs=2)
        assert verdicts(report) == verdicts(serial.validate_graph(jobs=1))


class TestTypingAgreement:
    """The HAMT swap must change no verdicts: every validation path builds
    the same typing on the recursive community workload."""

    def test_serial_parallel_and_per_node_typings_are_identical(self):
        workload = generate_community_workload(
            num_communities=3, people_per_community=6, seed=7)
        graph, schema = workload.graph, workload.schema
        serial = Validator(graph, schema, cache=True).validate_graph()
        parallel = Validator(graph, schema, cache=True, jobs=2).validate_graph()
        per_node = Validator(graph, schema, shared_context=False).validate_graph()
        assert serial.typing.to_dict() == parallel.typing.to_dict()
        assert serial.typing.to_dict() == per_node.typing.to_dict()
        # value semantics: the typings are equal objects with equal hashes,
        # not merely equal serialisations
        assert serial.typing == parallel.typing == per_node.typing
        assert hash(serial.typing) == hash(parallel.typing) == hash(per_node.typing)
        # and the typing matches the workload's ground truth
        valid = set(workload.valid_nodes)
        for node in workload.all_nodes:
            assert serial.typing.has(node, "Person") == (node in valid)

    def test_backtracking_typing_agrees_too(self):
        workload = generate_community_workload(
            num_communities=2, people_per_community=4, seed=9)
        graph, schema = workload.graph, workload.schema
        derivative = Validator(graph, schema, cache=True).validate_graph()
        backtracking = Validator(graph, schema, engine="backtracking",
                                 budget=5_000_000).validate_graph()
        assert backtracking.typing.to_dict() == derivative.typing.to_dict()


class TestParallelErrors:
    def test_per_node_mode_is_rejected(self):
        graph = paper_example_graph()
        validator = Validator(graph, person_schema(), shared_context=False, jobs=2)
        with pytest.raises(ValueError, match="shared"):
            validator.validate_graph()

    def test_engine_objects_are_rejected(self):
        graph = paper_example_graph()
        validator = Validator(graph, person_schema(),
                              engine=BacktrackingEngine(), jobs=2)
        with pytest.raises(ValueError, match="name"):
            validator.validate_graph()
