"""Tests for reference-graph partitioning (repro.shex.partition)."""

from __future__ import annotations

from repro.rdf import EX, Graph
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.namespaces import FOAF
from repro.shex import Schema
from repro.shex.expressions import arc, star
from repro.shex.partition import (
    GraphPartition,
    ReferenceIndex,
    partition_reference_graph,
    reference_edges,
    strongly_connected_components,
)
from repro.shex.typing import ShapeLabel
from repro.workloads import (
    generate_community_workload,
    knows_chain_graph,
    knows_cycle_graph,
    paper_example_graph,
    person_schema,
)


class TestReferenceIndex:
    def test_person_schema_maps_knows_to_person(self):
        index = ReferenceIndex(person_schema())
        assert index.has_references
        assert index.labels_for(FOAF.knows) == {ShapeLabel("Person")}
        assert index.labels_for(FOAF.age) == frozenset()

    def test_schema_without_references(self):
        schema = Schema.single("Flat", star(arc(EX.p, 1)))
        index = ReferenceIndex(schema)
        assert not index.has_references
        assert index.labels_for(EX.p) == frozenset()

    def test_multiple_labels_per_predicate(self):
        # ex:ref can demand both A and B of its target
        from repro.shex.node_constraints import shape_ref

        schema = Schema({
            "A": star(arc(EX.ref, shape_ref("B"))),
            "B": star(arc(EX.ref, shape_ref("A"))),
        })
        index = ReferenceIndex(schema)
        assert index.labels_for(EX.ref) == {ShapeLabel("A"), ShapeLabel("B")}


class TestReferenceEdges:
    def test_literal_objects_are_skipped(self):
        graph = Graph()
        graph.add(Triple(EX.a, FOAF.knows, Literal("not a person")))
        edges, demanded = reference_edges(graph, person_schema())
        assert edges == {}
        assert demanded == {}

    def test_non_reference_predicates_make_no_edges(self):
        graph = Graph()
        graph.add(Triple(EX.a, FOAF.name, Literal("A")))
        graph.add(Triple(EX.a, EX.sees, EX.b))
        edges, demanded = reference_edges(graph, person_schema())
        assert edges == {}

    def test_reference_edge_and_demand(self):
        graph = Graph()
        graph.add(Triple(EX.a, FOAF.knows, EX.b))
        edges, demanded = reference_edges(graph, person_schema())
        assert edges == {EX.a: {EX.b}}
        assert demanded == {EX.b: {ShapeLabel("Person")}}


class TestTarjan:
    def test_cycle_is_one_component(self):
        nodes = [EX.a, EX.b, EX.c]
        edges = {EX.a: {EX.b}, EX.b: {EX.c}, EX.c: {EX.a}}
        components = strongly_connected_components(nodes, edges)
        assert len(components) == 1
        assert sorted(components[0]) == sorted(nodes)

    def test_chain_emits_dependencies_first(self):
        nodes = [EX.a, EX.b, EX.c]
        edges = {EX.a: {EX.b}, EX.b: {EX.c}}
        components = strongly_connected_components(nodes, edges)
        assert components == [[EX.c], [EX.b], [EX.a]]

    def test_self_loop_is_a_singleton_component(self):
        components = strongly_connected_components([EX.a], {EX.a: {EX.a}})
        assert components == [[EX.a]]

    def test_successors_outside_the_node_set_are_ignored(self):
        components = strongly_connected_components([EX.a], {EX.a: {EX.ghost}})
        assert components == [[EX.a]]

    def test_deep_chain_does_not_hit_the_recursion_limit(self):
        # 5000 nodes is far beyond Python's default recursion limit; an
        # iterative Tarjan must handle it without sys.setrecursionlimit.
        nodes = [IRI(f"http://example.org/n{i}") for i in range(5000)]
        edges = {nodes[i]: {nodes[i + 1]} for i in range(len(nodes) - 1)}
        components = strongly_connected_components(nodes, edges)
        assert len(components) == len(nodes)
        # dependencies-first: the chain's tail comes out first
        assert components[0] == [nodes[-1]]
        assert components[-1] == [nodes[0]]


class TestPartition:
    def test_paper_example(self):
        partition = partition_reference_graph(paper_example_graph(), person_schema())
        # john -> bob is the only reference edge; bob and mary are level 0
        assert partition.stats()["components"] == 3
        assert partition.stats()["levels"] == 2
        level_0_nodes = {
            node
            for comp_index in partition.levels[0]
            for node in partition.components[comp_index]
        }
        assert EX.bob in level_0_nodes
        assert EX.mary in level_0_nodes
        assert EX.john not in level_0_nodes

    def test_self_referential_cycle_is_one_giant_component(self):
        graph, _ = knows_cycle_graph(10)
        partition = partition_reference_graph(graph, person_schema())
        assert partition.stats()["components"] == 1
        assert partition.largest_component == 10
        assert partition.levels == ((0,),)

    def test_chain_levels_are_topologically_ordered(self):
        graph, _ = knows_chain_graph(6)
        partition = partition_reference_graph(graph, person_schema())
        assert partition.stats()["components"] == 7
        # every level holds exactly one chain link; deeper links come first
        assert len(partition.levels) == 7
        for comp_index, external in enumerate(partition.external_targets):
            for target in external:
                target_comp = partition.component_of[target]
                assert target_comp < comp_index  # dependencies-first indices

    def test_disconnected_subjects_are_parallel_singletons(self):
        graph = Graph()
        for i in range(5):
            graph.add(Triple(EX[f"s{i}"], FOAF.name, Literal(f"n{i}")))
        partition = partition_reference_graph(graph, person_schema())
        assert partition.stats()["components"] == 5
        # no reference edges: everything sits in one perfectly-parallel level
        assert len(partition.levels) == 1
        assert partition.largest_component == 1

    def test_object_only_nodes_join_the_partition_with_demands(self):
        graph = Graph()
        graph.add(Triple(EX.a, FOAF.age, Literal(30)))
        graph.add(Triple(EX.a, FOAF.name, Literal("A")))
        graph.add(Triple(EX.a, FOAF.knows, EX.phantom))  # phantom has no triples
        partition = partition_reference_graph(graph, person_schema())
        assert EX.phantom in partition.component_of
        assert partition.demanded[EX.phantom] == {ShapeLabel("Person")}

    def test_community_workload_partitions_per_community(self):
        workload = generate_community_workload(
            num_communities=4, people_per_community=8, seed=2)
        partition = partition_reference_graph(workload.graph, workload.schema)
        stats = partition.stats()
        # at least one SCC per community, plus upstream invalid singletons
        assert stats["components"] >= 4
        assert stats["largest_component"] <= 8
        # rings in level 0, invalid members referencing them one level up
        assert len(partition.levels) == 2

    def test_partition_stats_shape(self):
        partition = partition_reference_graph(paper_example_graph(), person_schema())
        assert isinstance(partition, GraphPartition)
        stats = partition.stats()
        assert set(stats) == {"nodes", "components", "levels",
                              "largest_component", "edges"}
        assert stats["nodes"] == sum(len(c) for c in partition.components)
