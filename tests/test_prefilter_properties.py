"""Property-based tests: the compiled-schema prefilter agrees with the engine.

The prefilter may answer ``accept``, ``reject`` or ``unknown`` for any
``(expression, neighbourhood)`` pair.  Its soundness contract is one-sided
agreement with the derivative engine of Section 7:

* a prefilter **accept** implies the engine accepts,
* a prefilter **reject** implies the engine rejects,
* ``unknown`` implies nothing.

The expressions drawn here mix value sets, datatype constraints and
multi-predicate sets; the neighbourhood universe deliberately contains a
predicate no expression mentions (exercising the closed-world rule),
duplicate predicates (cardinality bounds) and objects of the wrong type
(value screens).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, XSD, Literal, Triple
from repro.shex import arc, datatype, matches, value_set
from repro.shex.compiled import CompiledShape
from repro.shex.expressions import EMPTY, EPSILON, And, Or, ShapeExpr, Star
from repro.shex.node_constraints import PredicateSet
from repro.shex.typing import ShapeLabel

NODE = EX.n
PREDICATES = [EX.a, EX.b]
#: EX.c never occurs in any exact predicate set: triples carrying it are
#: only acceptable to wildcard- or stem-predicate arcs.
EXTRA_PREDICATE = EX.c
OBJECTS = [Literal(1), Literal(2), Literal("x")]
UNIVERSE = [Triple(NODE, predicate, obj)
            for predicate in PREDICATES + [EXTRA_PREDICATE]
            for obj in OBJECTS]

LABEL = ShapeLabel("S")


def constraints() -> st.SearchStrategy:
    return st.one_of(
        st.builds(lambda values: value_set(*values),
                  st.lists(st.sampled_from([1, 2, "x"]), min_size=1,
                           max_size=2, unique=True)),
        st.just(datatype(XSD.integer)),
        st.just(datatype(XSD.string)),
    )


def predicate_sets() -> st.SearchStrategy[PredicateSet]:
    return st.one_of(
        st.sampled_from([PredicateSet.single(p) for p in PREDICATES]),
        st.just(PredicateSet(PREDICATES)),          # multi-predicate arc
        st.just(PredicateSet(any_predicate=True)),  # wildcard arc
        # stems: one covering the whole universe (including EXTRA_PREDICATE),
        # one covering only EX.a — exercises _sound_bounds stem coverage,
        # allowed_stems and the screen stem-exclusion
        st.just(PredicateSet(stem="http://example.org/")),
        st.just(PredicateSet(stem=EX.a.value)),
    )


def arcs() -> st.SearchStrategy[ShapeExpr]:
    return st.builds(lambda ps, c: arc(ps, c), predicate_sets(), constraints())


def expressions() -> st.SearchStrategy[ShapeExpr]:
    return st.recursive(
        # raw ∅ / ε leaves exercise the statically-empty pruning of the
        # first-predicate sets (the smart constructors would fold them away)
        st.one_of(arcs(), st.just(EMPTY), st.just(EPSILON)),
        lambda children: st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Star, children),
        ),
        max_leaves=6,
    )


def neighbourhoods() -> st.SearchStrategy[frozenset]:
    return st.frozensets(st.sampled_from(UNIVERSE), max_size=5)


class TestPrefilterAgreement:
    @settings(max_examples=300, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_decisions_agree_with_the_derivative_engine(self, expression, triples):
        shape = CompiledShape(LABEL, expression)
        decision = shape.prefilter(triples)
        if decision is None:
            return  # unknown: the engine decides, nothing to check
        assert decision.matched == matches(expression, triples), (
            f"prefilter said {decision.matched} ({decision.reason!r}) but the "
            f"engine disagrees on {expression.to_str()}"
        )

    @settings(max_examples=150, deadline=None)
    @given(expression=expressions())
    def test_empty_neighbourhood_is_always_decided(self, expression):
        shape = CompiledShape(LABEL, expression)
        decision = shape.prefilter(frozenset())
        assert decision is not None
        assert decision.matched == matches(expression, frozenset())

    @settings(max_examples=150, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_counts_argument_changes_nothing(self, expression, triples):
        from repro.shex.compiled import predicate_counts

        shape = CompiledShape(LABEL, expression)
        with_counts = shape.prefilter(triples, predicate_counts(triples))
        without = shape.prefilter(triples)
        assert (with_counts is None) == (without is None)
        if with_counts is not None:
            assert with_counts.matched == without.matched
