"""Property-based tests (hypothesis) for the core invariants of the paper.

The central theorems the implementation relies on are checked on randomly
generated expressions and neighbourhoods:

* **engine agreement** — the derivative matcher and the backtracking matcher
  accept exactly the same neighbourhoods (Section 7: ``e ≃ Σgₙ`` iff
  ``Σgₙ ∈ Sₙ[[e]]``),
* **language soundness/completeness** — for enumerable expressions, the
  matchers accept precisely the graphs in ``Sₙ[[e]]``,
* **derivative laws** — ``ν(∂t(e))`` equals "``{t}`` plus-some-rest matches",
  simplification preserves the accepted language, and consumption order does
  not change the verdict,
* **typing algebra** — ``⊎`` is commutative, associative and idempotent.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, Graph, Literal, Triple
from repro.shex import (
    BacktrackingEngine,
    DerivativeEngine,
    ShapeTyping,
    arc,
    derivative_graph,
    enumerate_language,
    expression_size,
    matches,
    matches_backtracking,
    nullable,
    value_set,
)
from repro.shex.expressions import And, Or, ShapeExpr, Star, alternative, interleave

NODE = EX.n

#: the finite universe the random expressions and graphs draw from.
PREDICATES = [EX.a, EX.b, EX.c]
VALUES = [1, 2]
UNIVERSE = [Triple(NODE, predicate, Literal(value))
            for predicate in PREDICATES for value in VALUES]


# --------------------------------------------------------------------- strategies
def arcs() -> st.SearchStrategy[ShapeExpr]:
    return st.builds(
        lambda predicate, values: arc(predicate, value_set(*values)),
        st.sampled_from(PREDICATES),
        st.lists(st.sampled_from(VALUES), min_size=1, max_size=2, unique=True),
    )


def expressions(max_depth: int = 3) -> st.SearchStrategy[ShapeExpr]:
    """Random regular shape expressions over the finite universe."""
    return st.recursive(
        arcs(),
        lambda children: st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Star, children),
        ),
        max_leaves=6,
    )


def neighbourhoods() -> st.SearchStrategy[frozenset]:
    return st.frozensets(st.sampled_from(UNIVERSE), max_size=4)


# ------------------------------------------------------------------ engine agreement
class TestEngineAgreement:
    @settings(max_examples=150, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_derivatives_and_backtracking_agree(self, expression, triples):
        assert matches(expression, triples) == matches_backtracking(expression, triples)

    @settings(max_examples=100, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_engine_objects_agree_with_module_functions(self, expression, triples):
        derivative_result = DerivativeEngine().match_neighbourhood(expression, triples)
        backtracking_result = BacktrackingEngine().match_neighbourhood(expression, triples)
        assert derivative_result.matched == backtracking_result.matched
        assert derivative_result.matched == matches(expression, triples)

    @settings(max_examples=100, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_simplification_does_not_change_the_verdict(self, expression, triples):
        plain = DerivativeEngine(simplify=True).match_neighbourhood(expression, triples)
        raw = DerivativeEngine(simplify=False).match_neighbourhood(expression, triples)
        assert plain.matched == raw.matched

    @settings(max_examples=100, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods(), seed=st.integers(0, 1000))
    def test_consumption_order_does_not_change_the_verdict(self, expression, triples, seed):
        import random

        ordered = sorted(triples, key=Triple.sort_key)
        shuffled = list(ordered)
        random.Random(seed).shuffle(shuffled)
        assert nullable(derivative_graph(expression, ordered)) == \
            nullable(derivative_graph(expression, shuffled))


# ------------------------------------------------------------- language correspondence
class TestLanguageCorrespondence:
    @settings(max_examples=80, deadline=None)
    @given(expression=expressions(max_depth=2), triples=neighbourhoods())
    def test_matchers_accept_exactly_the_enumerated_language(self, expression, triples):
        language = enumerate_language(expression, NODE, max_star_unroll=len(UNIVERSE))
        expected = frozenset(triples) in language
        assert matches(expression, triples) == expected

    @settings(max_examples=60, deadline=None)
    @given(expression=expressions(max_depth=2))
    def test_every_enumerated_graph_is_accepted(self, expression):
        language = enumerate_language(expression, NODE, max_star_unroll=len(UNIVERSE))
        for graph in list(language)[:20]:
            assert matches(expression, graph)

    @settings(max_examples=80, deadline=None)
    @given(expression=expressions(max_depth=2))
    def test_nullability_iff_empty_graph_in_language(self, expression):
        language = enumerate_language(expression, NODE, max_star_unroll=len(UNIVERSE))
        assert nullable(expression) == (frozenset() in language)


# --------------------------------------------------------------------- derivative laws
class TestDerivativeLaws:
    @settings(max_examples=100, deadline=None)
    @given(expression=expressions(), triple=st.sampled_from(UNIVERSE),
           rest=neighbourhoods())
    def test_derivative_step_law(self, expression, triple, rest):
        """e ≃ {t} ∪ ts  ⇔  ∂t(e) ≃ ts (for t ∉ ts)."""
        if triple in rest:
            rest = rest - {triple}
        whole = frozenset(rest) | {triple}
        from repro.shex import derivative

        assert matches(expression, whole) == matches(derivative(expression, triple), rest)

    @settings(max_examples=100, deadline=None)
    @given(expression=expressions())
    def test_derivative_by_empty_graph_is_identity(self, expression):
        assert derivative_graph(expression, []) == expression

    @settings(max_examples=100, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_match_iff_nullable_after_consuming_everything(self, expression, triples):
        ordered = sorted(triples, key=Triple.sort_key)
        assert matches(expression, triples) == nullable(derivative_graph(expression, ordered))

    @settings(max_examples=100, deadline=None)
    @given(left=expressions(max_depth=2), right=expressions(max_depth=2),
           triples=neighbourhoods())
    def test_smart_constructors_preserve_semantics(self, left, right, triples):
        assert matches(alternative(left, right), triples) == \
            matches(Or(left, right), triples)
        assert matches(interleave(left, right), triples) == \
            matches(And(left, right), triples)

    @settings(max_examples=50, deadline=None)
    @given(expression=expressions(), triples=neighbourhoods())
    def test_simplified_derivatives_never_grow_faster_than_raw(self, expression, triples):
        ordered = sorted(triples, key=Triple.sort_key)
        simplified = derivative_graph(expression, ordered, simplify=True)
        raw = derivative_graph(expression, ordered, simplify=False)
        assert expression_size(simplified) <= expression_size(raw)


# -------------------------------------------------------------------------- typing laws
_nodes = st.sampled_from([EX.n1, EX.n2, EX.n3])
_labels = st.sampled_from(["S1", "S2", "S3"])


def typings() -> st.SearchStrategy[ShapeTyping]:
    return st.lists(st.tuples(_nodes, _labels), max_size=5).map(
        lambda pairs: ShapeTyping({}) if not pairs else _build_typing(pairs)
    )


def _build_typing(pairs) -> ShapeTyping:
    typing = ShapeTyping.empty()
    for node, label in pairs:
        typing = typing.add(node, label)
    return typing


class TestTypingAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(left=typings(), right=typings())
    def test_combine_commutative(self, left, right):
        assert left | right == right | left

    @settings(max_examples=100, deadline=None)
    @given(a=typings(), b=typings(), c=typings())
    def test_combine_associative(self, a, b, c):
        assert (a | b) | c == a | (b | c)

    @settings(max_examples=100, deadline=None)
    @given(typing=typings())
    def test_combine_idempotent_and_identity(self, typing):
        assert typing | typing == typing
        assert typing | ShapeTyping.empty() == typing


# ----------------------------------------------------------------------- graph algebra
class TestGraphProperties:
    @settings(max_examples=60, deadline=None)
    @given(triples=st.frozensets(st.sampled_from(UNIVERSE), max_size=6))
    def test_turtle_round_trip(self, triples):
        graph = Graph(triples)
        assert Graph.parse(graph.serialize("turtle")) == graph

    @settings(max_examples=60, deadline=None)
    @given(triples=st.frozensets(st.sampled_from(UNIVERSE), max_size=6))
    def test_ntriples_round_trip(self, triples):
        graph = Graph(triples)
        assert Graph.parse(graph.serialize("ntriples"), format="ntriples") == graph

    @settings(max_examples=60, deadline=None)
    @given(left=st.frozensets(st.sampled_from(UNIVERSE), max_size=4),
           right=st.frozensets(st.sampled_from(UNIVERSE), max_size=4))
    def test_union_is_set_union(self, left, right):
        assert (Graph(left) | Graph(right)).to_set() == left | right
