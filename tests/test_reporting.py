"""Tests for the report renderers (text, JSON, CSV, summary)."""

import csv
import io
import json

import pytest

from repro.rdf import EX
from repro.shex import (
    Validator,
    format_csv,
    format_text,
    report_to_dict,
    report_to_json,
    summarize,
)
from repro.shex.validator import ValidationReport
from repro.workloads import paper_example_graph, person_schema


@pytest.fixture
def report():
    validator = Validator(paper_example_graph(), person_schema())
    return validator.validate_graph(labels=["Person"])


class TestSummary:
    def test_mixed_report(self, report):
        assert summarize(report) == "2/3 conform (1 failure)"

    def test_all_conforming(self):
        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_map({EX.john: "Person", EX.bob: "Person"})
        assert summarize(report) == "2/2 conform"

    def test_plural_failures(self):
        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_map({EX.mary: "Person"})
        report.entries.append(report.entries[0])
        assert "2 failures" in summarize(report)


class TestTextTable:
    def test_contains_every_node_and_verdict(self, report):
        text = format_text(report)
        assert "<http://example.org/john>" in text
        assert "<http://example.org/mary>" in text
        assert "conforms" in text and "FAILS" in text
        assert text.strip().endswith("2/3 conform (1 failure)")

    def test_reasons_can_be_hidden(self, report):
        with_reasons = format_text(report, show_reasons=True)
        without_reasons = format_text(report, show_reasons=False)
        assert len(without_reasons) < len(with_reasons)

    def test_long_reasons_are_truncated(self, report):
        text = format_text(report, max_reason_length=20)
        for line in text.splitlines():
            if "FAILS" in line and "(" in line:
                reason = line.split("(", 1)[1]
                assert len(reason) <= 22

    def test_empty_report(self):
        assert "empty validation report" in format_text(ValidationReport())

    def test_output_is_deterministic(self, report):
        assert format_text(report) == format_text(report)


class TestJson:
    def test_structure(self, report):
        data = report_to_dict(report)
        assert data["conforms"] is False
        assert data["summary"] == "2/3 conform (1 failure)"
        assert len(data["entries"]) == 3
        mary = next(entry for entry in data["entries"]
                    if entry["node"].endswith("mary>"))
        assert mary["conforms"] is False
        assert "reason" in mary
        assert data["typing"]["<http://example.org/john>"] == ["Person"]

    def test_stats_are_optional(self, report):
        without_stats = report_to_dict(report)
        with_stats = report_to_dict(report, include_stats=True)
        assert "stats" not in without_stats["entries"][0]
        assert "derivative_steps" in with_stats["entries"][0]["stats"]

    def test_json_text_round_trips(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed == report_to_dict(report)


class TestCsv:
    def test_header_and_rows(self, report):
        rows = list(csv.reader(io.StringIO(format_csv(report))))
        assert rows[0] == ["node", "shape", "conforms", "reason"]
        assert len(rows) == 4
        verdicts = {row[0]: row[2] for row in rows[1:]}
        assert verdicts["<http://example.org/john>"] == "true"
        assert verdicts["<http://example.org/mary>"] == "false"
