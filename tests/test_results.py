"""Tests for MatchStats, MatchResult and ValidationReportEntry."""


from repro.rdf import EX
from repro.shex import MatchResult, MatchStats, ShapeLabel, ShapeTyping
from repro.shex.results import ValidationReportEntry


class TestMatchStats:
    def test_defaults_are_zero(self):
        stats = MatchStats()
        assert stats.derivative_steps == 0
        assert stats.decompositions == 0
        assert stats.max_expression_size == 0

    def test_observe_expression_size_keeps_maximum(self):
        stats = MatchStats()
        stats.observe_expression_size(5)
        stats.observe_expression_size(3)
        stats.observe_expression_size(9)
        assert stats.max_expression_size == 9

    def test_merge_accumulates_counts_and_maximum(self):
        first = MatchStats(derivative_steps=3, arc_checks=2, max_expression_size=4)
        second = MatchStats(derivative_steps=5, decompositions=7, max_expression_size=9)
        merged = first.merge(second)
        assert merged is first
        assert merged.derivative_steps == 8
        assert merged.decompositions == 7
        assert merged.arc_checks == 2
        assert merged.max_expression_size == 9

    def test_as_dict_lists_every_counter(self):
        as_dict = MatchStats(rule_applications=4).as_dict()
        assert as_dict["rule_applications"] == 4
        from dataclasses import fields

        assert len(as_dict) == len(fields(MatchStats))


class TestMatchResult:
    def test_success_and_failure_constructors(self):
        success = MatchResult.success()
        failure = MatchResult.failure("something went wrong")
        assert success and success.matched
        assert not failure and not failure.matched
        assert failure.reason == "something went wrong"

    def test_success_carries_typing(self):
        typing = ShapeTyping.single(EX.n, "S")
        result = MatchResult.success(typing)
        assert result.typing.has(EX.n, "S")

    def test_bool_conversion(self):
        assert bool(MatchResult(True)) is True
        assert bool(MatchResult(False)) is False


class TestValidationReportEntry:
    def test_str_for_conforming_entry(self):
        entry = ValidationReportEntry(EX.john, ShapeLabel("Person"), True)
        assert "conforms to Person" in str(entry)
        assert "NOT" not in str(entry)

    def test_str_for_failing_entry_includes_reason(self):
        entry = ValidationReportEntry(EX.mary, ShapeLabel("Person"), False,
                                      reason="two ages")
        text = str(entry)
        assert "does NOT conform" in text
        assert "two ages" in text
