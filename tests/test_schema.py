"""Tests for Shape Expression Schemas and the typing context (Section 8)."""

import pytest

from repro.rdf import EX, FOAF, Graph, Literal, Triple
from repro.shex import (
    Arc,
    DerivativeEngine,
    PredicateSet,
    Schema,
    SchemaError,
    ShapeLabel,
    ShapeRef,
    ValidationContext,
    arc,
    interleave,
    plus,
    star,
    value_set,
)
from repro.workloads import person_schema


def reference_arc(predicate, label: str) -> Arc:
    return Arc(PredicateSet.single(predicate), ShapeRef(ShapeLabel(label)))


@pytest.fixture
def recursive_schema() -> Schema:
    """Example 13: p ↦ a→1 ‖ (b→{1,2})+ ‖ (c→@p)*."""
    expression = interleave(
        interleave(arc(EX.a, value_set(1)), plus(arc(EX.b, value_set(1, 2)))),
        star(reference_arc(EX.c, "p")),
    )
    return Schema({"p": expression}, start="p")


class TestSchemaConstruction:
    def test_single_shape(self):
        schema = Schema.single("S", arc(EX.a, value_set(1)))
        assert ShapeLabel("S") in schema
        assert schema.start == ShapeLabel("S")
        assert len(schema) == 1

    def test_labels_are_sorted(self):
        schema = Schema({"B": arc(EX.a), "A": arc(EX.b)})
        assert list(schema.labels()) == [ShapeLabel("A"), ShapeLabel("B")]

    def test_expression_lookup(self):
        expression = arc(EX.a, value_set(1))
        schema = Schema({"S": expression})
        assert schema.expression("S") == expression
        assert schema.expression(ShapeLabel("S")) == expression

    def test_unknown_label_raises(self):
        schema = Schema({"S": arc(EX.a)})
        with pytest.raises(SchemaError):
            schema.expression("Missing")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema({})

    def test_non_expression_shape_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"S": "not an expression"})

    def test_undefined_start_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"S": arc(EX.a)}, start="Other")

    def test_dangling_reference_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"S": reference_arc(EX.knows, "Missing")})

    def test_items_iterates_in_label_order(self):
        schema = Schema({"B": arc(EX.a), "A": arc(EX.b)})
        labels = [label for label, _ in schema.items()]
        assert labels == [ShapeLabel("A"), ShapeLabel("B")]


class TestSchemaIntrospection:
    def test_dependencies(self, recursive_schema):
        assert recursive_schema.dependencies("p") == {ShapeLabel("p")}

    def test_is_recursive(self, recursive_schema):
        assert recursive_schema.is_recursive()

    def test_non_recursive_schema(self):
        schema = Schema({
            "A": reference_arc(EX.child, "B"),
            "B": arc(EX.leaf, value_set(1)),
        })
        assert not schema.is_recursive()
        assert schema.dependencies("A") == {ShapeLabel("B")}
        assert schema.dependencies("B") == frozenset()

    def test_mutual_recursion_detected(self):
        schema = Schema({
            "A": reference_arc(EX.toB, "B"),
            "B": reference_arc(EX.toA, "A"),
        })
        assert schema.is_recursive()

    def test_person_schema_is_recursive(self):
        assert person_schema().is_recursive()


class TestValidationContext:
    def make_context(self, graph: Graph, schema: Schema) -> ValidationContext:
        engine = DerivativeEngine()
        return ValidationContext(graph, schema, engine.match_neighbourhood)

    def test_check_reference_success(self, recursive_schema):
        graph = Graph()
        graph.add(Triple(EX.n1, EX.a, Literal(1)))
        graph.add(Triple(EX.n1, EX.b, Literal(2)))
        context = self.make_context(graph, recursive_schema)
        result = context.check_reference(EX.n1, "p")
        assert result.matched
        assert result.typing.has(EX.n1, "p")
        assert context.is_confirmed(EX.n1, ShapeLabel("p"))

    def test_check_reference_failure_is_cached(self, recursive_schema):
        graph = Graph()
        graph.add(Triple(EX.n1, EX.a, Literal(1)))  # missing the mandatory b arc
        context = self.make_context(graph, recursive_schema)
        first = context.check_reference(EX.n1, "p")
        assert not first.matched
        assert context.is_failed(EX.n1, ShapeLabel("p"))
        second = context.check_reference(EX.n1, "p")
        assert not second.matched
        assert "already failed" in second.reason

    def test_nested_references(self, recursive_schema):
        graph = Graph()
        graph.add(Triple(EX.n1, EX.a, Literal(1)))
        graph.add(Triple(EX.n1, EX.b, Literal(1)))
        graph.add(Triple(EX.n1, EX.c, EX.n2))
        graph.add(Triple(EX.n2, EX.a, Literal(1)))
        graph.add(Triple(EX.n2, EX.b, Literal(2)))
        context = self.make_context(graph, recursive_schema)
        result = context.check_reference(EX.n1, "p")
        assert result.matched
        assert result.typing.has(EX.n1, "p")
        assert result.typing.has(EX.n2, "p")

    def test_broken_referenced_node_breaks_the_referrer(self, recursive_schema):
        graph = Graph()
        graph.add(Triple(EX.n1, EX.a, Literal(1)))
        graph.add(Triple(EX.n1, EX.b, Literal(1)))
        graph.add(Triple(EX.n1, EX.c, EX.n2))
        graph.add(Triple(EX.n2, EX.a, Literal(1)))  # n2 misses its b arc
        context = self.make_context(graph, recursive_schema)
        assert not context.check_reference(EX.n1, "p").matched

    def test_cyclic_data_terminates_and_conforms(self):
        schema = person_schema()
        graph = Graph()
        for name, person, friend in (("Alice", EX.alice, EX.bob), ("Bob", EX.bob, EX.alice)):
            graph.add(Triple(person, FOAF.age, Literal(30)))
            graph.add(Triple(person, FOAF.name, Literal(name)))
            graph.add(Triple(person, FOAF.knows, friend))
        context = self.make_context(graph, schema)
        result = context.check_reference(EX.alice, "Person")
        assert result.matched
        assert result.typing.has(EX.alice, "Person")
        assert result.typing.has(EX.bob, "Person")

    def test_self_reference_terminates(self):
        schema = person_schema()
        graph = Graph()
        graph.add(Triple(EX.loner, FOAF.age, Literal(30)))
        graph.add(Triple(EX.loner, FOAF.name, Literal("Loner")))
        graph.add(Triple(EX.loner, FOAF.knows, EX.loner))
        context = self.make_context(graph, schema)
        assert context.check_reference(EX.loner, "Person").matched

    def test_literal_objects_only_match_nullable_shapes(self):
        schema = Schema({
            "Anything": star(arc(EX.p)),
            "NeedsArc": arc(EX.p),
        })
        graph = Graph()
        context = self.make_context(graph, schema)
        assert context.check_reference(Literal("leaf"), "Anything").matched
        assert not context.check_reference(Literal("leaf"), "NeedsArc").matched

    def test_requires_schema(self):
        context = ValidationContext(Graph(), None, DerivativeEngine().match_neighbourhood)
        with pytest.raises(SchemaError):
            context.check_reference(EX.n, "S")

    def test_reference_checks_are_counted(self, recursive_schema):
        graph = Graph()
        graph.add(Triple(EX.n1, EX.a, Literal(1)))
        graph.add(Triple(EX.n1, EX.b, Literal(1)))
        context = self.make_context(graph, recursive_schema)
        context.check_reference(EX.n1, "p")
        assert context.stats.reference_checks == 1

    def test_recursion_depth_limit(self):
        # a long chain with a tiny depth limit fails gracefully
        schema = person_schema()
        graph = Graph()
        people = [EX[f"p{i}"] for i in range(20)]
        for index, person in enumerate(people):
            graph.add(Triple(person, FOAF.age, Literal(20)))
            graph.add(Triple(person, FOAF.name, Literal(f"P{index}")))
            if index + 1 < len(people):
                graph.add(Triple(person, FOAF.knows, people[index + 1]))
        engine = DerivativeEngine()
        context = ValidationContext(graph, schema, engine.match_neighbourhood,
                                    max_recursion_depth=3)
        result = context.check_reference(people[0], "Person")
        assert not result.matched


class TestShExCHelpers:
    def test_from_and_to_shexc_round_trip_semantics(self):
        schema = person_schema()
        text = schema.to_shexc()
        reparsed = Schema.from_shexc(text)
        assert set(reparsed.labels()) == set(schema.labels())
