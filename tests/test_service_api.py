"""Property tests for the service API contract (``repro.service.api``).

The core promise: every dataclass round-trips losslessly through its
versioned JSON codec (``from_json(to_json(x)) == x``), the payloads are
actually JSON-serialisable, and malformed/wrong-version payloads are
rejected with typed :class:`ServiceError`\\ s, never bare exceptions.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.api import (
    API_VERSION,
    DeltaRequest,
    DeltaResponse,
    ServiceError,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)

# -- strategies ---------------------------------------------------------------------
text = st.text(max_size=40)
labels = st.one_of(
    st.none(),
    st.lists(st.text(min_size=1, max_size=12), max_size=4).map(tuple),
)
opt_int = st.one_of(st.none(), st.integers(min_value=0, max_value=128))
counter = st.integers(min_value=0, max_value=2**40)
counters = st.dictionaries(
    st.text(min_size=1, max_size=12), counter, max_size=4)

validation_requests = st.builds(
    ValidationRequest,
    data=text,
    data_format=st.sampled_from(["turtle", "ntriples"]),
    schema=text,
    store=st.sampled_from(["dict", "columnar"]),
    labels=labels,
    jobs=opt_int,
    shards=opt_int,
)

delta_requests = st.builds(
    DeltaRequest,
    add=text,
    remove=text,
    labels=labels,
    allow_full_rebuild=st.booleans(),
    delta_id=st.one_of(st.none(), st.text(min_size=1, max_size=16)),
    expected_generation=opt_int,
)

verdict_responses = st.builds(
    VerdictResponse,
    node=text,
    shape=text,
    conforms=st.booleans(),
    generation=counter,
    reason=st.one_of(st.none(), text),
)

# degraded verdicts carry missing_shards only when the flag is set (the
# codec omits both fields at their defaults, so they round-trip as a pair)
degraded_verdict_responses = st.builds(
    VerdictResponse,
    node=text,
    shape=text,
    conforms=st.booleans(),
    generation=counter,
    degraded=st.just(True),
    missing_shards=st.lists(st.integers(min_value=0, max_value=15),
                            unique=True, max_size=4).map(tuple),
)

delta_responses = st.builds(
    DeltaResponse,
    generation=counter,
    added=counter,
    removed=counter,
    dirty_subjects=counter,
    affected_nodes=counter,
    revalidated_pairs=counter,
    reused_pairs=counter,
    retracted_verdicts=counter,
    full_rebuild=st.booleans(),
    conforms=st.booleans(),
)

service_stats = st.builds(
    ServiceStats,
    generation=counter,
    store=counters,
    journal=counters,
    prefilter=counters,
    cache=counters,
    verdicts=counters,
    session=counters,
    fleet=counters,
)

service_errors = st.builds(
    ServiceError,
    code=st.sampled_from(["bad-request", "parse-error", "schema-error",
                          "graph-not-found", "journal-overflow",
                          "stale-snapshot", "request-timeout",
                          "payload-too-large", "shutdown-timeout",
                          "fleet-worker-died", "offline-cache-miss"]),
    message=text,
    http_status=st.sampled_from([400, 404, 408, 409, 413, 500, 503]),
)


class TestRoundTrips:
    """``from_json(to_json(x)) == x`` for every api dataclass."""

    @given(validation_requests)
    def test_validation_request(self, request):
        assert ValidationRequest.from_json(request.to_json()) == request
        # and through an actual wire encoding
        assert ValidationRequest.from_json(
            json.dumps(request.to_json())) == request

    @given(delta_requests)
    def test_delta_request(self, request):
        assert DeltaRequest.from_json(request.to_json()) == request
        assert DeltaRequest.from_json(json.dumps(request.to_json())) == request

    @given(verdict_responses)
    def test_verdict_response(self, response):
        assert VerdictResponse.from_json(response.to_json()) == response
        assert VerdictResponse.from_json(
            json.dumps(response.to_json())) == response

    @given(degraded_verdict_responses)
    def test_degraded_verdict_response(self, response):
        assert VerdictResponse.from_json(response.to_json()) == response
        assert VerdictResponse.from_json(
            json.dumps(response.to_json())) == response

    @given(verdict_responses)
    def test_healthy_verdict_omits_degraded_fields(self, response):
        payload = response.to_json()
        assert "degraded" not in payload
        assert "missing_shards" not in payload

    @given(delta_responses)
    def test_delta_response(self, response):
        assert DeltaResponse.from_json(response.to_json()) == response
        assert DeltaResponse.from_json(
            json.dumps(response.to_json())) == response

    @given(service_stats)
    def test_service_stats(self, stats):
        assert ServiceStats.from_json(stats.to_json()) == stats
        assert ServiceStats.from_json(json.dumps(stats.to_json())) == stats

    @given(service_errors)
    def test_service_error(self, error):
        rebuilt = ServiceError.from_json(error.to_json())
        assert rebuilt == error
        assert rebuilt.http_status == error.http_status

    @given(verdict_responses)
    def test_payloads_are_version_stamped_json(self, response):
        payload = response.to_json()
        assert payload["version"] == API_VERSION
        json.dumps(payload)  # must not raise


class TestRejection:
    """Malformed payloads become typed errors, not bare exceptions."""

    def test_non_object_payload_is_bad_request(self):
        with pytest.raises(ServiceError) as exc:
            ValidationRequest.from_json("[]")
        assert exc.value.code == "bad-request"
        assert exc.value.http_status == 400

    def test_invalid_json_text_is_bad_request(self):
        with pytest.raises(ServiceError) as exc:
            DeltaRequest.from_json("{nope")
        assert exc.value.code == "bad-request"

    def test_wrong_version_is_rejected(self):
        payload = VerdictResponse(node="<urn:a>", shape="S", conforms=True,
                                  generation=1).to_json()
        payload["version"] = API_VERSION + 1
        with pytest.raises(ServiceError) as exc:
            VerdictResponse.from_json(payload)
        assert exc.value.code == "bad-request"

    def test_missing_required_field(self):
        with pytest.raises(ServiceError) as exc:
            VerdictResponse.from_json({"version": API_VERSION, "node": "<urn:a>"})
        assert exc.value.code == "bad-request"

    def test_wrong_field_type(self):
        with pytest.raises(ServiceError) as exc:
            DeltaResponse.from_json({"version": API_VERSION,
                                     "generation": "three"})
        assert exc.value.code == "bad-request"

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ServiceError):
            DeltaResponse.from_json({"version": API_VERSION, "generation": True})

    def test_labels_must_be_strings(self):
        with pytest.raises(ServiceError):
            ValidationRequest.from_json({"version": API_VERSION, "labels": [1]})

    def test_unknown_store_is_rejected_at_construction(self):
        with pytest.raises(ServiceError) as exc:
            ValidationRequest(store="sqlite")
        assert exc.value.code == "bad-request"

    def test_unknown_data_format_is_rejected(self):
        with pytest.raises(ServiceError):
            ValidationRequest(data_format="rdfxml")


class TestVerdictByteIdentity:
    def test_reason_is_excluded_by_default(self):
        """Default responses omit ``reason`` so serial/parallel/sharded modes
        serialise byte-identically despite order-dependent failure wording."""
        verdict = VerdictResponse(node="<urn:a>", shape="S", conforms=False,
                                  generation=3)
        assert "reason" not in verdict.to_json()
        with_reason = VerdictResponse(node="<urn:a>", shape="S", conforms=False,
                                      generation=3, reason="because")
        assert with_reason.to_json()["reason"] == "because"


class TestServiceStatsFormat:
    """``format_text`` keeps the classic ``--cache-stats`` stderr contract."""

    def _stats(self):
        return ServiceStats(
            generation=7,
            store={"store": "columnar", "triples": 10, "segments": 2,
                   "index_bytes": 640,
                   "dictionary": {"decoded_terms": 5, "iris": 8}},
            journal={"tracked_subjects": 3, "records": 4, "overflows": 0,
                     "max_entries": 1024},
            prefilter={"accepts": 1, "rejects": 2, "reference_checks": 3,
                       "schema": {"labels": 1}},
            cache={"hits": 5, "misses": 7, "evictions": 0, "derivatives": 9,
                   "constraint_verdicts": 4, "max_entries": 0,
                   "hit_rate": 0.4167},
            session={"jobs": 1, "shards": 0},
        )

    def test_line_prefixes_and_keys(self):
        rendered = self._stats().format_text()
        assert "store-stats: store=columnar" in rendered
        assert "segments=2" in rendered and "index_bytes=640" in rendered
        assert "dictionary-stats: decoded_terms=5" in rendered
        assert "journal-stats: tracked_subjects=3" in rendered
        assert "prefilter-stats: accepts=1 rejects=2" in rendered
        assert "cache-stats: hits=5 misses=7 evictions=0" in rendered
        assert "max_entries=unbounded" in rendered  # 0 renders as unbounded

    def test_disabled_subsystems_render_explicitly(self):
        rendered = ServiceStats().format_text()
        assert "prefilter-stats: disabled" in rendered
        assert "cache-stats: no derivative cache active" in rendered

    def test_parallel_note_appears_with_jobs(self):
        stats = ServiceStats(session={"jobs": 4})
        assert "worker-local" in stats.format_text()
        assert "worker-local" not in ServiceStats(
            session={"jobs": 1}).format_text()
