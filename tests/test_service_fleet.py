"""Tests for the resident shard fleet: verdict identity with the serial and
refork paths, warm worker persistence, per-shard journal semantics (a single
shard's overflow must surface as a typed 409 *without* corrupting sibling
baselines), worker-death handling (typed 503 + heal-by-respawn), and the
client :class:`VerdictCache` under out-of-order generation observations."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    DeltaRequest,
    ServiceError,
    ServiceStats,
    ShardedValidator,
    ValidationSession,
    VerdictCache,
    VerdictResponse,
)
from repro.shex import Validator
from repro.workloads import generate_community_workload, person_schema


def community():
    return generate_community_workload(
        num_communities=4, people_per_community=6,
        invalid_fraction=0.25, seed=11)


def build_session(shards=0, resident=True, jobs=1):
    workload = community()
    session = ValidationSession(workload.graph, person_schema(), jobs=jobs,
                                shards=shards, resident=resident)
    return workload, session


def round_delta(workload, round_index):
    """Alternate breaking and repairing a couple of people so every round
    dirties at least two subjects (on different shards with high odds)."""
    nodes = sorted(workload.all_nodes, key=lambda t: t.value)
    victim = nodes[round_index % len(nodes)]
    extra = nodes[(round_index + 7) % len(nodes)]
    bad_age = (f'{victim.n3()} <http://xmlns.com/foaf/0.1/age> '
               '"9999"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
    alias = (f'{extra.n3()} <http://xmlns.com/foaf/0.1/name> '
             f'"Alias {round_index}" .\n')
    if round_index % 2 == 0:
        return DeltaRequest(add=bad_age + alias)
    return DeltaRequest(remove=bad_age, add=alias)


def verdict_blob(session, workload):
    return tuple(
        json.dumps(session.verdict(node.n3()).to_json(), sort_keys=True)
        for node in sorted(workload.all_nodes, key=lambda t: t.value))


class TestResidentIdentity:
    def test_deltas_match_serial_with_warm_workers(self):
        """Several warm delta rounds: byte-identical responses and verdicts
        versus the serial session, with the same worker pids throughout."""
        w_serial, serial = build_session()
        w_fleet, fleet = build_session(shards=2)
        try:
            serial.validate()
            fleet.validate()
            stats = fleet.stats().to_json()["fleet"]
            assert stats["started"] and stats["workers_loaded"] == 2
            pids_before = stats["pids"]

            for round_index in range(4):
                delta = round_delta(w_serial, round_index)
                resp_serial = serial.apply_delta(delta)
                resp_fleet = fleet.apply_delta(delta)
                assert (json.dumps(resp_serial.to_json(), sort_keys=True)
                        == json.dumps(resp_fleet.to_json(), sort_keys=True))
                assert verdict_blob(serial, w_serial) \
                    == verdict_blob(fleet, w_fleet)

            stats = fleet.stats().to_json()["fleet"]
            assert stats["pids"] == pids_before  # resident, not re-forked
            assert stats["respawns"] == 0
            rounds = [worker["rounds"] for worker in stats["workers"]]
            assert all(r >= 4 for r in rounds)  # every shard ran every round
        finally:
            serial.close()
            fleet.close()

    def test_full_runs_match_serial_when_warm(self):
        workload = community()
        expected = Validator(workload.graph, workload.schema).validate_graph()
        expected_map = {(e.node, e.label): e.conforms
                        for e in expected.entries}
        sharded = ShardedValidator(community().graph, person_schema(),
                                   shards=3)
        try:
            first = sharded.validate_graph()
            second = sharded.validate_graph()  # warm: replicas re-run owned
            for report in (first, second):
                assert len(report) == len(expected)
                for entry in report.entries:
                    assert expected_map[(entry.node, entry.label)] \
                        == entry.conforms
        finally:
            sharded.close_fleet()

    def test_refork_mode_still_matches_serial(self):
        """``resident=False`` keeps the PR 7 fork-per-run path as an escape
        hatch, with identical wire responses."""
        w_serial, serial = build_session()
        w_refork, refork = build_session(shards=2, resident=False)
        try:
            serial.validate()
            refork.validate()
            stats = refork.stats().to_json()["fleet"]
            assert stats["resident"] is False
            assert not stats.get("started")

            delta = round_delta(w_serial, 0)
            resp_serial = serial.apply_delta(delta)
            resp_refork = refork.apply_delta(delta)
            assert (json.dumps(resp_serial.to_json(), sort_keys=True)
                    == json.dumps(resp_refork.to_json(), sort_keys=True))
            assert verdict_blob(serial, w_serial) \
                == verdict_blob(refork, w_refork)
        finally:
            serial.close()
            refork.close()

    def test_fleet_stats_line_in_format_text(self):
        _, fleet = build_session(shards=2)
        try:
            fleet.validate()
            rendered = fleet.stats().format_text()
            assert "fleet-stats: shards=2 resident=True" in rendered
            assert "workers_alive=2" in rendered
        finally:
            fleet.close()
        plain = ServiceStats(fleet={"resident": False}).format_text()
        assert "fleet-stats" not in plain  # only shown once workers started


class TestPerShardJournals:
    def test_single_shard_overflow_is_typed_409_and_siblings_survive(self):
        """A journal overflow on one shard surfaces as ``journal-overflow``
        (409) *before any* shard's baseline moves: the two-phase
        check-then-revalidate broadcast means sibling shards never run (their
        ``rounds`` counters stay put) and their journals never overflow."""
        workload, session = build_session(shards=2)
        try:
            # shard 0 gets a one-record journal; shard 1 keeps the default.
            session.validator._fleet_journal_limits = {0: 1}
            session.validate()
            before = {worker["shard"]: worker
                      for worker in session.stats().to_json()
                      ["fleet"]["workers"]}

            generation_before = session.generation
            with pytest.raises(ServiceError) as excinfo:
                session.apply_delta(round_delta(workload, 0))
            assert excinfo.value.code == "journal-overflow"
            assert excinfo.value.http_status == 409
            # the delta itself landed on the coordinator graph...
            assert session.generation > generation_before

            after = {worker["shard"]: worker
                     for worker in session.stats().to_json()
                     ["fleet"]["workers"]}
            # ...but no shard ran a revalidation round, and the sibling's
            # journal never overflowed: its baseline is intact.
            for shard in (0, 1):
                assert after[shard]["rounds"] == before[shard]["rounds"]
            assert after[0]["journal"]["overflows"] >= 1
            assert after[1]["journal"]["overflows"] == 0

            # recovery: opt into the full rebuild; the fleet reloads and the
            # verdicts match a fresh serial run over the mutated graph.
            session.validator._fleet_journal_limits = None
            response = session.apply_delta(
                DeltaRequest(allow_full_rebuild=True))
            assert response.full_rebuild
            expected = Validator(session.graph,
                                 person_schema()).validate_graph()
            for entry in expected.entries:
                verdict = session.verdict(entry.node.n3())
                assert verdict.conforms == entry.conforms
        finally:
            session.close()


class TestWorkerDeath:
    def test_dead_worker_mid_request_raises_typed_503(self):
        sharded = ShardedValidator(community().graph, person_schema(),
                                   shards=2)
        try:
            sharded.validate_graph()
            fleet = sharded._fleet
            worker = fleet.workers[0]
            worker.process.terminate()
            worker.process.join(timeout=10)
            with pytest.raises(ServiceError) as excinfo:
                fleet.request(worker, "stats", None)
            assert excinfo.value.code == "fleet-worker-died"
            assert excinfo.value.http_status == 503
            assert worker.failed
        finally:
            sharded.close_fleet()

    def test_next_delta_heals_dead_worker_by_respawn(self):
        """Killing a worker between rounds: the next delta respawns it,
        warm-loads the coordinator's current graph and still answers with
        verdicts identical to the serial session."""
        w_serial, serial = build_session()
        w_fleet, fleet = build_session(shards=2)
        try:
            serial.validate()
            fleet.validate()
            victim = fleet.validator._fleet.workers[0]
            victim.process.terminate()
            victim.process.join(timeout=10)

            delta = round_delta(w_serial, 0)
            resp_serial = serial.apply_delta(delta)
            resp_fleet = fleet.apply_delta(delta)
            assert (json.dumps(resp_serial.to_json(), sort_keys=True)
                    == json.dumps(resp_fleet.to_json(), sort_keys=True))
            assert verdict_blob(serial, w_serial) \
                == verdict_blob(fleet, w_fleet)

            stats = fleet.stats().to_json()["fleet"]
            assert stats["respawns"] >= 1
            assert stats["workers_alive"] == 2
        finally:
            serial.close()
            fleet.close()


class TestVerdictCacheOutOfOrderGenerations:
    """Interleaved deltas can complete out of order: a client may observe
    generation 12 from one response and only then see a late generation-10
    response.  The cache must never regress its high-water mark, never store
    a stale verdict, and never serve one."""

    def test_late_older_observation_does_not_regress_or_invalidate(self):
        cache = VerdictCache()
        cache.observe("g1", 10)
        fresh = VerdictResponse(node="<n>", shape="S", conforms=True,
                                generation=10)
        cache.put("g1", fresh)
        cache.observe("g1", 8)  # late ack of an older delta
        assert cache.latest_generation("g1") == 10
        assert cache.get("g1", "<n>", "S") is fresh
        assert cache.invalidations == 0

    def test_put_of_stale_verdict_is_dropped(self):
        cache = VerdictCache()
        cache.observe("g1", 10)
        cache.put("g1", VerdictResponse(node="<n>", shape="S", conforms=True,
                                        generation=8))
        assert len(cache) == 0
        assert cache.get("g1", "<n>", "S") is None  # miss, not a stale hit

    def test_newer_observation_invalidates_and_pinned_get_misses(self):
        cache = VerdictCache()
        cache.put("g1", VerdictResponse(node="<n>", shape="S", conforms=True,
                                        generation=10))
        cache.observe("g1", 12)
        assert cache.invalidations == 1
        # even a get pinned to the old generation cannot resurrect it
        assert cache.get("g1", "<n>", "S", generation=10) is None
        assert cache.get("g1", "<n>", "S") is None

    def test_generations_are_tracked_per_graph(self):
        cache = VerdictCache()
        cache.put("g1", VerdictResponse(node="<n>", shape="S", conforms=True,
                                        generation=5))
        cache.observe("g2", 99)  # another graph racing ahead
        assert cache.latest_generation("g1") == 5
        assert cache.get("g1", "<n>", "S") is not None
