"""Resilience tests for the validation service: the exactly-once delta
ledger, deterministic fault injection across fleet / server / client, the
retrying :class:`ServiceClient`, degraded reads during a shard outage,
``/healthz``, and the fleet shutdown lifecycle."""

from __future__ import annotations

import gc
import json
import random
import time
from dataclasses import replace

import pytest

from repro.service import (
    DeltaRequest,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ShardFleet,
    ValidationRequest,
    ValidationSession,
    serve,
    shard_of,
)
from repro.shex.validator import IncrementalFallback
from repro.workloads import (
    PAPER_EXAMPLE_TURTLE,
    generate_community_workload,
    paper_example_graph,
    person_schema,
)

MARY = "<http://example.org/mary>"
JOHN = "<http://example.org/john>"
# fixes mary: drop the second age, give her a name
MARY_FIX_ADD = ('<http://example.org/mary> '
                '<http://xmlns.com/foaf/0.1/name> "Mary" .\n')
MARY_FIX_REMOVE = ('<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> '
                   '"65"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
# breaks john: a second foaf:age violates the exactly-one cardinality
JOHN_BREAK_ADD = ('<http://example.org/john> <http://xmlns.com/foaf/0.1/age> '
                  '"9999"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')


def paper_session(**kwargs):
    session = ValidationSession(paper_example_graph(), person_schema(),
                                **kwargs)
    session.validate()
    return session


def community():
    return generate_community_workload(
        num_communities=4, people_per_community=6,
        invalid_fraction=0.25, seed=11)


def round_delta(workload, round_index):
    nodes = sorted(workload.all_nodes, key=lambda t: t.value)
    victim = nodes[round_index % len(nodes)]
    extra = nodes[(round_index + 7) % len(nodes)]
    bad_age = (f'{victim.n3()} <http://xmlns.com/foaf/0.1/age> '
               '"9999"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
    alias = (f'{extra.n3()} <http://xmlns.com/foaf/0.1/name> '
             f'"Alias {round_index}" .\n')
    if round_index % 2 == 0:
        return DeltaRequest(add=bad_age + alias)
    return DeltaRequest(remove=bad_age, add=alias)


def verdict_blob(session, workload):
    return tuple(
        json.dumps(session.verdict(node.n3()).to_json(), sort_keys=True)
        for node in sorted(workload.all_nodes, key=lambda t: t.value))


class TestExactlyOnceLedger:
    def test_replayed_delta_id_returns_the_original_response(self):
        session = paper_session()
        try:
            request = DeltaRequest(add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE,
                                   delta_id="edit-1")
            first = session.apply_delta(request)
            generation = session.generation
            triples = len(session.graph)

            replayed = session.apply_delta(request)  # duplicate on the wire
            assert replayed == first
            assert session.generation == generation  # no second apply
            assert len(session.graph) == triples
            stats = session.stats().to_json()["session"]
            assert stats["delta_rounds"] == 1
            assert stats["replayed_deltas"] == 1
            assert stats["ledger_entries"] == 1
        finally:
            session.close()

    def test_reused_delta_id_with_different_payload_is_400(self):
        session = paper_session()
        try:
            session.apply_delta(DeltaRequest(add=MARY_FIX_ADD,
                                             delta_id="edit-1"))
            with pytest.raises(ServiceError) as excinfo:
                session.apply_delta(DeltaRequest(add=JOHN_BREAK_ADD,
                                                 delta_id="edit-1"))
            assert excinfo.value.code == "bad-request"
            assert excinfo.value.http_status == 400
        finally:
            session.close()

    def test_generation_conflict_is_typed_409(self):
        session = paper_session()
        try:
            current = session.generation
            with pytest.raises(ServiceError) as excinfo:
                session.apply_delta(DeltaRequest(
                    add=MARY_FIX_ADD, delta_id="edit-1",
                    expected_generation=current + 5))
            assert excinfo.value.code == "generation-conflict"
            assert excinfo.value.http_status == 409
            assert session.generation == current  # nothing applied

            response = session.apply_delta(DeltaRequest(
                add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE, delta_id="edit-2",
                expected_generation=current))
            assert response.generation > current
        finally:
            session.close()

    def test_ledger_eviction_is_fifo_and_the_guard_catches_old_retries(self):
        session = paper_session(delta_ledger_size=2)
        try:
            generation_before = session.generation
            old = DeltaRequest(add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE,
                               delta_id="edit-1",
                               expected_generation=generation_before)
            session.apply_delta(old)
            session.apply_delta(DeltaRequest(add=JOHN_BREAK_ADD,
                                             delta_id="edit-2"))
            session.apply_delta(DeltaRequest(remove=JOHN_BREAK_ADD,
                                             delta_id="edit-3"))
            stats = session.stats().to_json()["session"]
            assert stats["ledger_entries"] == 2  # edit-1 evicted (FIFO)

            # a retry of the evicted delta cannot replay; the optimistic
            # generation guard turns it into a typed conflict instead of a
            # silent double-apply.
            with pytest.raises(ServiceError) as excinfo:
                session.apply_delta(old)
            assert excinfo.value.code == "generation-conflict"
        finally:
            session.close()

    def test_retry_after_revalidation_failure_resumes_without_reapplying(self):
        """The delta landed but revalidation died: the ledger records the
        apply, and the retry re-runs *only* the revalidation."""
        session = paper_session()
        try:
            request = DeltaRequest(add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE,
                                   delta_id="edit-1")
            original = session.validator.revalidate

            def dying(*args, **kwargs):
                raise IncrementalFallback("journal-overflow",
                                          "injected mid-round failure")

            session.validator.revalidate = dying
            with pytest.raises(ServiceError) as excinfo:
                session.apply_delta(request)
            assert excinfo.value.code == "journal-overflow"
            assert "delta applied" in excinfo.value.message
            triples = len(session.graph)
            generation = session.generation

            session.validator.revalidate = original
            response = session.apply_delta(request)
            assert len(session.graph) == triples  # not applied twice
            assert session.generation == generation
            assert response.added == 1 and response.removed == 1
            assert session.verdict(MARY).conforms
            stats = session.stats().to_json()["session"]
            assert stats["replayed_deltas"] == 1
        finally:
            session.close()


class TestFleetFaultInjection:
    def test_crash_after_apply_heals_within_the_round(self):
        """A worker dying right after applying a staged delta is tolerated,
        respawned and warm-loaded mid-round: the delta still succeeds with
        responses and verdicts byte-identical to the serial session."""
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.crash-after-apply", shard=0, hits=(0,)),
            FaultSpec(point="fleet.stall", shard=1, hits=(0,), delay=0.2),
        ), seed=1)
        w_serial = community()
        w_fleet = community()
        serial = ValidationSession(w_serial.graph, person_schema())
        fleet = ValidationSession(w_fleet.graph, person_schema(), shards=2,
                                  fault_plan=plan)
        try:
            serial.validate()
            fleet.validate()
            delta = round_delta(w_serial, 0)
            resp_serial = serial.apply_delta(delta)
            resp_fleet = fleet.apply_delta(delta)
            assert (json.dumps(resp_serial.to_json(), sort_keys=True)
                    == json.dumps(resp_fleet.to_json(), sort_keys=True))
            assert verdict_blob(serial, w_serial) \
                == verdict_blob(fleet, w_fleet)
            assert fleet.stats().to_json()["fleet"]["respawns"] >= 1
        finally:
            serial.close()
            fleet.close()

    def test_crash_mid_revalidate_opens_a_degraded_window_then_converges(self):
        """A worker crashing *during* revalidation fails the round (503) and
        leaves the coordinator baseline stale.  Inside that window: normal
        reads are a typed 409, degraded reads answer from live shards with
        ``missing_shards`` populated, and a retry of the same ``delta_id``
        heals the fleet and converges to the serial session's verdicts
        without re-applying the delta."""
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.crash-before-revalidate", shard=0,
                      hits=(1,)),
        ), seed=2)
        w_serial = community()
        w_fleet = community()
        serial = ValidationSession(w_serial.graph, person_schema())
        fleet = ValidationSession(w_fleet.graph, person_schema(), shards=2,
                                  fault_plan=plan)
        try:
            serial.validate()
            fleet.validate()
            delta0 = round_delta(w_serial, 0)
            serial.apply_delta(delta0)
            fleet.apply_delta(delta0)

            delta1 = replace(round_delta(w_serial, 1), delta_id="edit-1")
            resp_serial = serial.apply_delta(delta1)
            with pytest.raises(ServiceError) as excinfo:
                fleet.apply_delta(delta1)
            assert excinfo.value.code == "fleet-worker-died"
            assert excinfo.value.http_status == 503

            nodes = sorted(w_fleet.all_nodes, key=lambda t: t.value)
            node_live = next(n for n in nodes if shard_of(n, 2) == 1)
            node_dead = next(n for n in nodes if shard_of(n, 2) == 0)

            # the window: normal reads refuse to serve the stale baseline...
            with pytest.raises(ServiceError) as excinfo:
                fleet.verdict(node_live.n3())
            assert excinfo.value.code == "stale-baseline"

            # ...degraded reads answer from the owning live shard (already
            # revalidated, so it agrees with the serial post-delta state)...
            live = fleet.verdict(node_live.n3(), allow_degraded=True)
            assert live.degraded and live.missing_shards == (0,)
            assert live.conforms == serial.verdict(node_live.n3()).conforms

            # ...and a dead-shard pair falls back to the coordinator's last
            # complete baseline instead of a 503.
            dead = fleet.verdict(node_dead.n3(), allow_degraded=True)
            assert dead.degraded and dead.missing_shards == (0,)

            health = fleet.health()
            assert health["fleet"]["workers_alive"] == 1

            # retry the same delta_id: the ledger skips the mutation, the
            # fleet heals, and the sessions converge byte-for-byte.
            resp_retry = fleet.apply_delta(delta1)
            assert resp_retry.generation == resp_serial.generation
            assert resp_retry.added == resp_serial.added
            assert resp_retry.removed == resp_serial.removed
            assert resp_retry.conforms == resp_serial.conforms
            assert verdict_blob(serial, w_serial) \
                == verdict_blob(fleet, w_fleet)
            stats = fleet.stats().to_json()
            assert stats["fleet"]["respawns"] >= 1
            assert stats["session"]["replayed_deltas"] == 1
        finally:
            serial.close()
            fleet.close()

    def test_dropped_response_times_out_and_the_retry_converges(self):
        """A worker computing a round but never answering looks like a hang:
        the bounded response timeout turns it into a typed 503, and the
        ledgered retry respawns the worker and converges.

        Occurrence counters restart when a worker respawns, so a drop
        scheduled inside the heal replay window (load=0, check=1,
        revalidate=2, verdicts=3) would fire again on every fresh process —
        a poison pill, not a transient fault.  Hit 5 (the second delta's
        ``check`` response) fires once on the original process only."""
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.drop-response", shard=0, hits=(5,)),
        ), seed=3)
        w_serial = community()
        w_fleet = community()
        serial = ValidationSession(w_serial.graph, person_schema())
        fleet = ValidationSession(w_fleet.graph, person_schema(), shards=2,
                                  fault_plan=plan,
                                  fleet_response_timeout=2.0)
        try:
            serial.validate()
            fleet.validate()
            delta0 = round_delta(w_serial, 0)
            serial.apply_delta(delta0)
            fleet.apply_delta(delta0)

            delta1 = replace(round_delta(w_serial, 1), delta_id="edit-1")
            serial.apply_delta(delta1)
            with pytest.raises(ServiceError) as excinfo:
                fleet.apply_delta(delta1)
            assert excinfo.value.code == "fleet-worker-died"
            assert "unresponsive" in excinfo.value.message

            fleet.apply_delta(delta1)  # ledgered retry: heal + revalidate
            assert verdict_blob(serial, w_serial) \
                == verdict_blob(fleet, w_fleet)
        finally:
            serial.close()
            fleet.close()


@pytest.fixture
def plain_server():
    with serve(person_schema()) as srv:
        srv.start_background()
        yield srv


class TestServerFaultHooks:
    def _server(self, plan):
        return serve(person_schema(), faults=FaultInjector(plan))

    def test_connection_reset_is_retried_transparently(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="server.connection-reset", hits=(1,)),), seed=4)
        with self._server(plan) as srv:
            srv.start_background()
            client = ServiceClient(srv.host, srv.port, retry=RetryPolicy(
                base_delay=0.01, jitter=0.0, seed=5))
            graph_id = client.load_graph(ValidationRequest(
                data=PAPER_EXAMPLE_TURTLE))["graph_id"]
            # response #1 is reset before a single byte; the client sees a
            # dead reused connection, reconnects and retries the GET.
            assert client.verdict(graph_id, JOHN).conforms

    def test_truncated_response_is_retried_transparently(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="server.truncate-response", hits=(1,)),), seed=4)
        with self._server(plan) as srv:
            srv.start_background()
            injector = srv._httpd.fault_injector
            client = ServiceClient(srv.host, srv.port, retry=RetryPolicy(
                base_delay=0.01, jitter=0.0, seed=5))
            graph_id = client.load_graph(ValidationRequest(
                data=PAPER_EXAMPLE_TURTLE))["graph_id"]
            assert not client.verdict(graph_id, MARY).conforms
            assert injector.fired  # the truncation really happened

    def test_delayed_response_stalls_but_succeeds(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="server.delay-response", hits=(0,), delay=0.4),),
            seed=4)
        with self._server(plan) as srv:
            srv.start_background()
            client = ServiceClient(srv.host, srv.port)
            started = time.monotonic()
            loaded = client.load_graph(ValidationRequest(
                data=PAPER_EXAMPLE_TURTLE))
            assert time.monotonic() - started >= 0.35
            assert loaded["triples"] == 8


class TestClientFaultHooks:
    def test_lost_response_on_idempotent_get_is_retried(self, plain_server):
        plan = FaultPlan(specs=(
            FaultSpec(point="client.timeout", hits=(1,)),), seed=6)
        injector = FaultInjector(plan)
        client = ServiceClient(plain_server.host, plain_server.port,
                               retry=RetryPolicy(base_delay=0.01, jitter=0.0,
                                                 seed=6),
                               faults=injector)
        graph_id = client.load_graph(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE))["graph_id"]
        assert client.verdict(graph_id, JOHN).conforms  # fired on request #1
        assert injector.fired == [
            {"point": "client.timeout", "occurrence": 1, "shard": None}]

    def test_send_then_die_on_non_idempotent_post_is_not_retried(
            self, plain_server):
        """The request was fully sent, so the server may have processed it:
        retrying a non-idempotent POST would risk a double create, so the
        failure surfaces typed instead."""
        plan = FaultPlan(specs=(
            FaultSpec(point="client.send-then-die", hits=(0,)),), seed=6)
        client = ServiceClient(plain_server.host, plain_server.port,
                               faults=FaultInjector(plan))
        with pytest.raises(ServiceError) as excinfo:
            client.load_graph(ValidationRequest(data=PAPER_EXAMPLE_TURTLE))
        assert excinfo.value.code == "connection-failed"
        assert excinfo.value.http_status == 503


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        delays = [policy.delay(attempt, None) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stream_is_seed_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5)
        first = [policy.delay(i, random.Random(42)) for i in range(4)]
        second = [policy.delay(i, random.Random(42)) for i in range(4)]
        assert first == second
        for attempt, value in enumerate(first):
            base = 0.1 * (2.0 ** attempt)
            assert base <= value <= base * 1.5


class TestConnectionReuse:
    def test_one_connection_serves_many_requests(self, plain_server):
        client = ServiceClient(plain_server.host, plain_server.port)
        graph_id = client.load_graph(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE))["graph_id"]
        conn = client._conn
        assert conn is not None
        client.verdict(graph_id, JOHN)
        client.server_stats()
        assert client._conn is conn  # same socket, not one per request

    def test_close_releases_and_the_client_stays_usable(self, plain_server):
        with ServiceClient(plain_server.host, plain_server.port) as client:
            client.server_stats()
            client.close()
            assert client._conn is None
            client.server_stats()  # transparently reconnects
            assert client._conn is not None
        assert client._conn is None  # context exit closed it again


class TestHealthz:
    def test_healthz_reports_graphs_without_taking_session_locks(
            self, plain_server):
        client = ServiceClient(plain_server.host, plain_server.port)
        empty = client.healthz()
        assert empty["status"] == "ok" and empty["graphs"] == {}

        graph_id = client.load_graph(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE))["graph_id"]
        health = client.healthz()
        assert health["status"] == "ok"
        info = health["graphs"][graph_id]
        assert info["closed"] is False
        assert info["maintained_generation"] == info["generation"]
        assert "fleet" not in info  # serial session, no fleet to report

    def test_healthz_answers_while_the_session_lock_is_held(self,
                                                            plain_server):
        client = ServiceClient(plain_server.host, plain_server.port)
        graph_id = client.load_graph(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE))["graph_id"]
        session = plain_server.service.session(graph_id)
        with session._lock:  # a long delta would hold exactly this lock
            health = ServiceClient(plain_server.host,
                                   plain_server.port).healthz()
        assert health["graphs"][graph_id]["closed"] is False


class TestDegradedReadsOverHTTP:
    def test_shard_outage_degraded_read_retry_heal(self):
        """The full ISSUE scenario over the wire: crash mid-revalidate →
        503 on the delta and ``degraded`` healthz → degraded reads with
        ``missing_shards`` instead of a 503 → retried ``delta_id`` heals
        and converges."""
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.crash-before-revalidate", shard=0,
                      hits=(1,)),
        ), seed=7)
        with serve(person_schema(), shards=2, fleet_response_timeout=5.0,
                   faults=FaultInjector(plan)) as srv:
            srv.start_background()
            client = ServiceClient(srv.host, srv.port, retry=None)
            graph_id = client.load_graph(ValidationRequest(
                data=PAPER_EXAMPLE_TURTLE))["graph_id"]
            client.apply_delta(graph_id, DeltaRequest(
                add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE, delta_id="edit-0"))

            break_john = DeltaRequest(add=JOHN_BREAK_ADD, delta_id="edit-1")
            with pytest.raises(ServiceError) as excinfo:
                client.apply_delta(graph_id, break_john)
            assert excinfo.value.code == "fleet-worker-died"
            assert excinfo.value.http_status == 503

            with pytest.raises(ServiceError) as excinfo:
                client.verdict(graph_id, MARY)
            assert excinfo.value.code == "stale-baseline"
            assert client.healthz()["status"] == "degraded"

            # john lives on the surviving shard 1, whose replica already
            # revalidated the delta: the degraded read sees him broken.
            john = client.verdict(graph_id, JOHN, allow_degraded=True)
            assert john.degraded and john.missing_shards == (0,)
            assert not john.conforms
            # mary's owner (shard 0) is down: her verdict comes from the
            # coordinator's last complete baseline — post-fix, conforming.
            mary = client.verdict(graph_id, MARY, allow_degraded=True)
            assert mary.degraded and mary.missing_shards == (0,)
            assert mary.conforms

            retried = client.apply_delta(graph_id, break_john)
            assert retried.added == 1
            assert client.healthz()["status"] == "ok"
            healed = client.verdict(graph_id, JOHN)
            assert not healed.conforms and not healed.degraded
            assert healed.generation == retried.generation
            assert client.graph_stats(graph_id).session[
                "replayed_deltas"] == 1

    def test_retrying_client_rides_out_the_crash_invisibly(self):
        """With a retrying client the same crash is invisible: apply_delta
        auto-stamps a delta_id, the 503 is retried, the ledger resumes the
        round, and the caller just sees success."""
        plan = FaultPlan(specs=(
            FaultSpec(point="fleet.crash-before-revalidate", shard=0,
                      hits=(1,)),
        ), seed=8)
        with serve(person_schema(), shards=2, fleet_response_timeout=5.0,
                   faults=FaultInjector(plan)) as srv:
            srv.start_background()
            client = ServiceClient(srv.host, srv.port, retry=RetryPolicy(
                base_delay=0.05, jitter=0.0, seed=9))
            graph_id = client.load_graph(ValidationRequest(
                data=PAPER_EXAMPLE_TURTLE))["graph_id"]
            client.apply_delta(graph_id, DeltaRequest(
                add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE))
            delta = client.apply_delta(graph_id, DeltaRequest(
                add=JOHN_BREAK_ADD))  # crashes server-side, retried, resumed
            assert delta.added == 1
            assert not client.verdict(graph_id, JOHN).conforms
            stats = client.graph_stats(graph_id)
            assert stats.session["replayed_deltas"] == 1
            assert stats.fleet["respawns"] >= 1


class TestFleetShutdownLifecycle:
    def test_force_shutdown_terminates_workers_and_is_idempotent(self):
        fleet = ShardFleet(2)
        fleet.start()
        processes = [worker.process for worker in fleet.workers]
        assert all(process.is_alive() for process in processes)
        fleet.shutdown(force=True)
        assert fleet.workers == []
        assert all(not process.is_alive() for process in processes)
        fleet.shutdown(force=True)  # second call is a no-op

    def test_graceful_shutdown_drains_workers(self):
        fleet = ShardFleet(2)
        fleet.start()
        processes = [worker.process for worker in fleet.workers]
        fleet.shutdown()
        assert all(not process.is_alive() for process in processes)

    def test_spawning_on_a_closed_fleet_is_typed_409(self):
        fleet = ShardFleet(2)
        fleet.start()
        handle = fleet.workers[0]
        fleet.shutdown(force=True)
        with pytest.raises(ServiceError) as excinfo:
            fleet.start()
        assert excinfo.value.code == "fleet-closed"
        assert excinfo.value.http_status == 409
        with pytest.raises(ServiceError) as excinfo:
            fleet.respawn(handle)
        assert excinfo.value.code == "fleet-closed"

    def test_gc_safety_net_reaps_leaked_workers(self):
        fleet = ShardFleet(2)
        fleet.start()
        processes = [worker.process for worker in fleet.workers]
        del fleet  # leaked without shutdown: __del__ must reap the fleet
        gc.collect()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if all(not process.is_alive() for process in processes):
                break
            time.sleep(0.05)
        assert all(not process.is_alive() for process in processes)
