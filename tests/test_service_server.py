"""End-to-end tests for ``repro serve``: HTTP round-trips through
:class:`ServiceClient`, typed wire errors, and the client verdict cache."""

from __future__ import annotations

import http.client
import json
import socket
import time

import pytest

from repro.service import (
    DeltaRequest,
    ServiceClient,
    ServiceError,
    ValidationRequest,
    VerdictCache,
    serve,
)
from repro.shex import Validator
from repro.workloads import (
    PAPER_EXAMPLE_TURTLE,
    PERSON_SCHEMA_SHEXC,
    paper_example_graph,
    person_schema,
)

MARY_FIX_ADD = ('<http://example.org/mary> '
                '<http://xmlns.com/foaf/0.1/name> "Mary" .\n')
MARY_FIX_REMOVE = ('<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> '
                   '"65"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
JOHN = "<http://example.org/john>"
MARY = "<http://example.org/mary>"


@pytest.fixture
def server():
    with serve(person_schema()) as srv:
        srv.start_background()
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.host, server.port)


def load_paper_graph(client):
    return client.load_graph(ValidationRequest(data=PAPER_EXAMPLE_TURTLE))


class TestRoundTrip:
    def test_load_delta_verdict_stats(self, client):
        loaded = client.load_graph(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE, schema=PERSON_SCHEMA_SHEXC))
        graph_id = loaded["graph_id"]
        assert loaded["conforms"] is False and loaded["triples"] == 8

        mary = client.verdict(graph_id, MARY)
        assert not mary.conforms

        delta = client.apply_delta(graph_id, DeltaRequest(
            add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE))
        assert delta.generation > loaded["generation"]
        assert delta.conforms and not delta.full_rebuild

        fixed = client.verdict(graph_id, MARY)
        assert fixed.conforms and fixed.generation == delta.generation

        stats = client.graph_stats(graph_id)
        assert stats.generation == delta.generation
        assert stats.session["delta_rounds"] == 1
        wide = client.server_stats()
        assert graph_id in wide["graphs"]

    def test_uses_the_preloaded_server_schema(self, client):
        loaded = load_paper_graph(client)  # request carries no schema text
        assert client.verdict(loaded["graph_id"], JOHN).conforms

    def test_verdicts_match_a_direct_validator_run(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        direct = Validator(paper_example_graph(),
                           person_schema()).validate_graph()
        for entry in direct.entries:
            verdict = client.verdict(graph_id, entry.node.n3(),
                                     entry.label.name)
            assert verdict.conforms == entry.conforms

    def test_reason_is_opt_in_over_the_wire(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        assert client.verdict(graph_id, MARY).reason is None
        explained = client.verdict(graph_id, MARY, include_reason=True)
        assert explained.reason

    def test_drop_graph(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        client.drop_graph(graph_id)
        with pytest.raises(ServiceError) as exc:
            client.verdict(graph_id, JOHN)
        assert exc.value.code == "graph-not-found"


class TestWireErrors:
    def _raw(self, server, method, path, body=None):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()

    def test_unknown_graph_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.verdict("g999", JOHN)
        assert exc.value.code == "graph-not-found"
        assert exc.value.http_status == 404

    def test_unknown_route_is_404(self, server):
        status, payload = self._raw(server, "GET", "/nope")
        assert status == 404 and payload["error"] == "not-found"

    def test_malformed_body_is_400(self, server):
        status, payload = self._raw(server, "POST", "/graphs", body="{nope")
        assert status == 400 and payload["error"] == "bad-request"

    def test_missing_node_param_is_400(self, client, server):
        graph_id = load_paper_graph(client)["graph_id"]
        status, payload = self._raw(server, "GET",
                                    f"/graphs/{graph_id}/verdicts")
        assert status == 400 and payload["error"] == "bad-request"

    def test_delta_parse_error_is_400(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        with pytest.raises(ServiceError) as exc:
            client.apply_delta(graph_id, DeltaRequest(add="<broken"))
        assert exc.value.code == "parse-error"
        assert exc.value.http_status == 400

    def test_schema_error_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.load_graph(ValidationRequest(data="", schema="<S> { nope"))
        assert exc.value.code == "schema-error"

    def test_verdict_not_found_is_404(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        with pytest.raises(ServiceError) as exc:
            client.verdict(graph_id, "<http://example.org/nobody>")
        assert exc.value.code == "verdict-not-found"

    def test_connection_refused_is_typed(self):
        # retry=None: surface the raw transport error on first strike
        dead = ServiceClient("127.0.0.1", 9, retry=None)
        with pytest.raises(ServiceError) as exc:
            dead.server_stats()
        assert exc.value.code == "connection-failed"
        assert exc.value.http_status == 503

    def test_connection_refused_exhausts_retries(self):
        from repro.service import RetryPolicy

        dead = ServiceClient("127.0.0.1", 9, retry=RetryPolicy(
            max_attempts=2, base_delay=0.01, jitter=0.0, seed=7))
        with pytest.raises(ServiceError) as exc:
            dead.server_stats()
        assert exc.value.code == "retries-exhausted"
        assert exc.value.http_status == 503


class TestClientCache:
    def test_verdict_cache_hit_skips_the_wire(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        first = client.verdict(graph_id, JOHN)
        second = client.verdict(graph_id, JOHN)
        assert first == second
        stats = client.cache.stats()
        assert stats["hits"] == 1 and stats["entries"] >= 1

    def test_generation_bump_invalidates_cached_verdicts(self, client):
        graph_id = load_paper_graph(client)["graph_id"]
        stale = client.verdict(graph_id, MARY)
        assert not stale.conforms
        client.apply_delta(graph_id, DeltaRequest(
            add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE))
        assert client.cache.stats()["invalidations"] >= 1
        fresh = client.verdict(graph_id, MARY)  # refetched, not served stale
        assert fresh.conforms
        assert fresh.generation > stale.generation

    def test_offline_mode_serves_warm_hits_only(self, server):
        cache = VerdictCache()
        online = ServiceClient(server.host, server.port, cache=cache)
        graph_id = load_paper_graph(online)["graph_id"]
        online.verdict(graph_id, JOHN)

        offline = ServiceClient(server.host, server.port, cache=cache,
                                offline=True)
        assert offline.verdict(graph_id, JOHN).conforms  # warm hit
        with pytest.raises(ServiceError) as exc:
            offline.verdict(graph_id, MARY)  # cold miss
        assert exc.value.code == "offline-cache-miss"
        assert exc.value.http_status == 503

    def test_cache_is_per_graph(self, client):
        first = load_paper_graph(client)["graph_id"]
        second = load_paper_graph(client)["graph_id"]
        assert first != second
        client.verdict(first, JOHN)
        client.verdict(second, JOHN)
        assert client.cache.stats()["hits"] == 0  # distinct keys, no collision


def raw_request_lines(body_bytes, content_length=None):
    """A POST /graphs request as raw bytes, body length spoofable."""
    length = len(body_bytes) if content_length is None else content_length
    head = (f"POST /graphs HTTP/1.1\r\n"
            f"Host: localhost\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {length}\r\n"
            f"\r\n").encode("ascii")
    return head, body_bytes


def read_http_response(sock):
    """Read one HTTP response (status, parsed JSON body) off a raw socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError(f"connection closed mid-response: {data!r}")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("connection closed mid-body")
        rest += chunk
    return status, json.loads(rest[:length].decode("utf-8"))


class TestHardenedRequestPath:
    """Regression tests for the short-read, stalled-client and oversized-body
    failure modes of the HTTP front."""

    def test_slow_chunked_body_is_accumulated(self, server):
        """A client trickling the body in small chunks must not be truncated:
        ``_read_body`` loops until Content-Length bytes have arrived."""
        body = json.dumps(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE).to_json()).encode("utf-8")
        head, payload = raw_request_lines(body)
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(head)
            for start in range(0, len(payload), 64):
                sock.sendall(payload[start:start + 64])
                time.sleep(0.005)
            status, response = read_http_response(sock)
        assert status == 201
        assert response["triples"] == 8

    def test_truncated_body_is_typed_400(self, server):
        """Content-Length promises more bytes than the client ever sends:
        the server must answer a typed 400 naming the byte counts, not feed
        a truncated payload to the JSON parser."""
        head, payload = raw_request_lines(b'{"data": "', content_length=500)
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(head + payload)
            sock.shutdown(socket.SHUT_WR)  # premature EOF mid-body
            status, response = read_http_response(sock)
        assert status == 400
        assert response["error"] == "bad-request"
        assert "truncated" in response["message"]
        assert "500" in response["message"]

    def test_stall_mid_body_is_typed_408(self):
        """A client that sends headers plus a body prefix and then stalls
        trips the per-connection timeout and gets a typed 408."""
        with serve(person_schema(), connection_timeout=0.5) as srv:
            srv.start_background()
            head, payload = raw_request_lines(b'{"data": "', content_length=500)
            with socket.create_connection((srv.host, srv.port),
                                          timeout=10) as sock:
                sock.sendall(head + payload)  # ...and never send the rest
                status, response = read_http_response(sock)
            assert status == 408
            assert response["error"] == "request-timeout"
            assert "stalled" in response["message"]

    def test_silent_client_is_dropped_and_server_stays_responsive(self):
        """A connection that never sends a byte must not pin a handler
        thread: the socket timeout closes it, and other clients are
        unaffected."""
        with serve(person_schema(), connection_timeout=0.5) as srv:
            srv.start_background()
            with socket.create_connection((srv.host, srv.port),
                                          timeout=10) as stalled:
                deadline = time.monotonic() + 10
                closed = b"x"
                while time.monotonic() < deadline:
                    try:
                        closed = stalled.recv(1)
                        break
                    except TimeoutError:
                        continue
                assert closed == b""  # server closed the idle connection
                # and the server still answers a well-behaved client
                client = ServiceClient(srv.host, srv.port)
                assert load_paper_graph(client)["triples"] == 8

    def test_oversized_body_is_typed_413(self):
        with serve(person_schema(), max_body_bytes=64) as srv:
            srv.start_background()
            client = ServiceClient(srv.host, srv.port)
            with pytest.raises(ServiceError) as excinfo:
                client.load_graph(ValidationRequest(data=PAPER_EXAMPLE_TURTLE))
            assert excinfo.value.code == "payload-too-large"
            assert excinfo.value.http_status == 413


class TestHardenedShutdown:
    def test_shutdown_closes_sessions_and_listener(self):
        srv = serve(person_schema())
        srv.start_background()
        client = ServiceClient(srv.host, srv.port)
        load_paper_graph(client)
        host, port = srv.host, srv.port
        srv.shutdown()
        assert srv.service._sessions == {}  # sessions (and fleets) released
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1).close()

    def test_stuck_serve_thread_is_detected_and_listener_force_closed(self):
        """A serve loop that never acknowledges shutdown must not silently
        leak the listener: the socket is force-closed, the sessions are
        released and a structured ``shutdown-timeout`` error is raised."""
        srv = serve(person_schema(), shutdown_timeout=0.3)
        host, port = srv.host, srv.port
        # simulate a wedged serve loop: it "started" but will never service
        # the shutdown request (BaseServer.shutdown would block forever).
        srv._serving.set()
        try:
            with pytest.raises(ServiceError) as excinfo:
                srv.shutdown()
            assert excinfo.value.code == "shutdown-timeout"
            assert excinfo.value.http_status == 500
            assert srv.service._sessions == {}
            with pytest.raises(OSError):  # listener was force-closed anyway
                socket.create_connection((host, port), timeout=1).close()
        finally:
            # release the disposable closer thread blocked in
            # BaseServer.shutdown() so it does not outlive the test.
            srv._httpd._BaseServer__is_shut_down.set()
