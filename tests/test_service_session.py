"""Tests for the :class:`ValidationSession` facade: lifecycle, typed errors,
warm verdict serving and delta serialization."""

from __future__ import annotations

import threading
import time

import pytest

from repro.rdf import EX, Graph
from repro.rdf.errors import StaleSnapshotError
from repro.rdf.ntriples import iter_ntriples
from repro.rdf.terms import IRI, Literal, Triple
from repro.service import (
    DeltaRequest,
    ServiceError,
    ValidationRequest,
    ValidationSession,
)
from repro.shex import Validator
from repro.workloads import (
    PAPER_EXAMPLE_TURTLE,
    PERSON_SCHEMA_SHEXC,
    paper_example_graph,
    person_schema,
)

FOAF_AGE = IRI("http://xmlns.com/foaf/0.1/age")
FOAF_NAME = IRI("http://xmlns.com/foaf/0.1/name")
XSD_INT = IRI("http://www.w3.org/2001/XMLSchema#integer")

MARY_FIX_ADD = ('<http://example.org/mary> '
                '<http://xmlns.com/foaf/0.1/name> "Mary" .\n')
MARY_FIX_REMOVE = ('<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> '
                   '"65"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')


@pytest.fixture
def session() -> ValidationSession:
    return ValidationSession(paper_example_graph(), person_schema())


class TestLifecycle:
    def test_validate_then_verdict(self, session):
        report = session.validate()
        assert not report.conforms  # :mary has a duplicate age
        john = session.verdict("<http://example.org/john>")
        assert john.conforms and john.shape == "Person"
        assert john.generation == session.generation
        mary = session.verdict("<http://example.org/mary>", "Person")
        assert not mary.conforms

    def test_verdicts_come_from_the_baseline_not_a_fresh_run(self, session):
        session.validate()

        def boom(*args, **kwargs):  # pragma: no cover - must not be called
            raise AssertionError("verdict() triggered a validation run")

        session.validator.validate_node = boom
        session.validator.validate_graph = boom
        session.validator.engine.match_neighbourhood = boom
        verdict = session.verdict("<http://example.org/john>", "Person")
        assert verdict.conforms

    def test_delta_bumps_generation_and_flips_verdict(self, session):
        session.validate()
        before = session.generation
        response = session.apply_delta(DeltaRequest(
            add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE))
        assert response.generation > before
        assert response.added == 1 and response.removed == 1
        assert not response.full_rebuild
        assert response.conforms
        mary = session.verdict("<http://example.org/mary>")
        assert mary.conforms and mary.generation == response.generation

    def test_delta_verdicts_match_a_fresh_direct_run(self, session):
        session.validate()
        session.apply_delta(DeltaRequest(add=MARY_FIX_ADD,
                                         remove=MARY_FIX_REMOVE))
        fresh_graph = paper_example_graph()
        fresh_graph.add_all(iter_ntriples(MARY_FIX_ADD))
        fresh_graph.remove_all(iter_ntriples(MARY_FIX_REMOVE))
        fresh = Validator(fresh_graph, person_schema()).validate_graph()
        for entry in fresh.entries:
            verdict = session.verdict(entry.node, entry.label)
            assert verdict.conforms == entry.conforms

    def test_reason_is_opt_in(self, session):
        session.validate()
        plain = session.verdict("<http://example.org/mary>")
        assert plain.reason is None
        explained = session.verdict("<http://example.org/mary>",
                                    include_reason=True)
        assert explained.reason

    def test_closed_session_refuses(self, session):
        session.validate()
        session.close()
        with pytest.raises(ServiceError) as exc:
            session.verdict("<http://example.org/john>")
        assert exc.value.code == "session-closed"


class TestTypedErrors:
    def test_verdict_before_validate_is_no_baseline(self, session):
        with pytest.raises(ServiceError) as exc:
            session.verdict("<http://example.org/john>")
        assert exc.value.code == "no-baseline"
        assert exc.value.http_status == 409

    def test_out_of_band_mutation_is_stale_baseline(self, session):
        session.validate()
        session.graph.add(Triple(EX.john, FOAF_NAME, Literal("J2")))
        with pytest.raises(ServiceError) as exc:
            session.verdict("<http://example.org/john>")
        assert exc.value.code == "stale-baseline"
        assert exc.value.http_status == 409

    def test_unknown_node_is_verdict_not_found(self, session):
        session.validate()
        with pytest.raises(ServiceError) as exc:
            session.verdict("<http://example.org/nobody>")
        assert exc.value.code == "verdict-not-found"
        assert exc.value.http_status == 404

    def test_bad_node_term_is_parse_error(self, session):
        session.validate()
        with pytest.raises(ServiceError) as exc:
            session.verdict("not a term")
        assert exc.value.code == "parse-error"
        assert exc.value.http_status == 400

    def test_bad_delta_ntriples_is_parse_error(self, session):
        session.validate()
        with pytest.raises(ServiceError) as exc:
            session.apply_delta(DeltaRequest(add="<broken"))
        assert exc.value.code == "parse-error"

    def test_delta_without_baseline_is_typed(self, session):
        with pytest.raises(ServiceError) as exc:
            session.apply_delta(DeltaRequest(add=MARY_FIX_ADD))
        assert exc.value.code == "no-baseline"
        assert exc.value.http_status == 409

    def test_journal_overflow_is_typed_and_recoverable(self):
        graph = Graph(journal_max_entries=1)
        graph.add_all(iter_ntriples(
            Graph.parse(PAPER_EXAMPLE_TURTLE).serialize("ntriples")))
        session = ValidationSession(graph, person_schema())
        session.validate()
        # touching two subjects with a 1-entry journal overflows it
        delta = DeltaRequest(
            add=('<http://example.org/john> '
                 '<http://xmlns.com/foaf/0.1/name> "J2" .\n'
                 '<http://example.org/bob> '
                 '<http://xmlns.com/foaf/0.1/name> "B2" .\n'))
        with pytest.raises(ServiceError) as exc:
            session.apply_delta(delta)
        assert exc.value.code == "journal-overflow"
        assert exc.value.http_status == 409
        # the delta WAS applied; recovery is an explicit rebuild opt-in
        response = session.apply_delta(
            DeltaRequest(allow_full_rebuild=True))
        assert response.full_rebuild
        assert session.verdict("<http://example.org/john>").conforms

    def test_stale_snapshot_maps_to_typed_error(self, session):
        session.validate()

        def raise_stale(*args, **kwargs):
            raise StaleSnapshotError("snapshot went stale")

        session.validator.revalidate = raise_stale
        with pytest.raises(ServiceError) as exc:
            session.apply_delta(DeltaRequest(add=MARY_FIX_ADD))
        assert exc.value.code == "stale-snapshot"
        assert exc.value.http_status == 409

    def test_from_request_schema_error(self):
        with pytest.raises(ServiceError) as exc:
            ValidationSession.from_request(
                ValidationRequest(data="", schema="<S> { broken"))
        assert exc.value.code == "schema-error"
        assert exc.value.http_status == 400

    def test_from_request_parse_error(self):
        with pytest.raises(ServiceError) as exc:
            ValidationSession.from_request(ValidationRequest(
                data="@prefix broken", schema=PERSON_SCHEMA_SHEXC))
        assert exc.value.code == "parse-error"

    def test_from_request_requires_a_schema(self):
        with pytest.raises(ServiceError) as exc:
            ValidationSession.from_request(ValidationRequest(data=""))
        assert exc.value.code == "schema-error"


class TestSerialization:
    def test_concurrent_deltas_never_interleave(self):
        """Two threads posting deltas must serialize through the session:
        ``revalidate`` (which retracts verdicts mid-flight) is never
        re-entered while a previous round is still running."""
        session = ValidationSession(paper_example_graph(), person_schema())
        session.validate()
        inner = session.validator.revalidate
        active = threading.Semaphore(1)
        overlaps = []

        def guarded(*args, **kwargs):
            if not active.acquire(blocking=False):
                overlaps.append(True)  # pragma: no cover - the failure path
            try:
                time.sleep(0.01)
                return inner(*args, **kwargs)
            finally:
                active.release()

        session.validator.revalidate = guarded
        adds = [
            ('<http://example.org/john> '
             f'<http://xmlns.com/foaf/0.1/name> "alias{i}" .\n')
            for i in range(6)
        ]
        errors = []

        def post(text):
            try:
                session.apply_delta(DeltaRequest(add=text))
            except ServiceError as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=post, args=(text,)) for text in adds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not overlaps
        assert not errors
        # the maintained baseline ends up identical to a fresh full run
        fresh_graph = paper_example_graph()
        for text in adds:
            fresh_graph.add_all(iter_ntriples(text))
        fresh = Validator(fresh_graph, person_schema()).validate_graph()
        for entry in fresh.entries:
            assert session.verdict(entry.node,
                                   entry.label).conforms == entry.conforms


class TestStats:
    def test_stats_counters_track_the_lifecycle(self, session):
        session.validate()
        session.apply_delta(DeltaRequest(add=MARY_FIX_ADD))
        session.verdict("<http://example.org/john>")
        stats = session.stats()
        assert stats.generation == session.generation
        assert stats.session["full_runs"] == 1
        assert stats.session["delta_rounds"] == 1
        assert stats.session["verdict_queries"] == 1
        assert stats.verdicts["maintained_pairs"] == 3
        assert stats.journal["tracked_subjects"] >= 1
        assert stats.store["store"] == "dict"

    def test_stats_round_trip_through_json(self, session):
        session.validate()
        stats = session.stats()
        from repro.service.api import ServiceStats

        assert ServiceStats.from_json(stats.to_json()) == stats
