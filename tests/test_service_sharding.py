"""Tests for the hash-sharded scheduler: deterministic partitioning, verdict
identity with the serial path, and byte-identical wire responses across
serial / ``--jobs`` / ``--shards`` server modes."""

from __future__ import annotations

import json

from repro.rdf.ntriples import iter_ntriples
from repro.service import (
    DeltaRequest,
    ShardedValidator,
    ValidationSession,
    shard_of,
)
from repro.shex import Validator
from repro.workloads import generate_community_workload, person_schema


def community():
    return generate_community_workload(
        num_communities=4, people_per_community=6,
        invalid_fraction=0.25, seed=11)


def fix_delta(workload):
    """An N-Triples delta that repairs a couple of invalid people and breaks
    one valid one — exercises retraction in both directions."""
    broken = sorted(workload.invalid_nodes, key=lambda t: t.value)[:2]
    victim = sorted(workload.valid_nodes, key=lambda t: t.value)[0]
    add_lines = [f'{node.n3()} <http://xmlns.com/foaf/0.1/name> "Fixed" .'
                 for node in broken]
    add_lines.append(
        f'{victim.n3()} <http://xmlns.com/foaf/0.1/age> '
        '"second"^^<http://www.w3.org/2001/XMLSchema#integer> .')
    return "\n".join(add_lines) + "\n"


class TestShardOf:
    def test_deterministic_and_in_range(self):
        workload = community()
        nodes = workload.all_nodes
        for shards in (1, 2, 3, 8):
            buckets = [shard_of(node, shards) for node in nodes]
            assert all(0 <= b < shards for b in buckets)
            assert buckets == [shard_of(node, shards) for node in nodes]

    def test_spreads_nodes_across_shards(self):
        workload = community()
        buckets = {shard_of(node, 4) for node in workload.all_nodes}
        assert len(buckets) > 1  # 24 nodes cannot all hash to one shard


class TestShardedIdentity:
    def test_full_run_matches_serial(self):
        workload = community()
        serial = Validator(workload.graph, workload.schema).validate_graph()
        sharded = ShardedValidator(workload.graph, person_schema(),
                                   shards=2).validate_graph()
        assert len(serial) == len(sharded)
        serial_map = {(e.node, e.label): e.conforms for e in serial.entries}
        for entry in sharded.entries:
            assert serial_map[(entry.node, entry.label)] == entry.conforms

    def test_ground_truth_holds_under_sharding(self):
        workload = community()
        report = ShardedValidator(workload.graph, person_schema(),
                                  shards=3).validate_graph()
        verdicts = {entry.node: entry.conforms for entry in report.entries}
        for node in workload.valid_nodes:
            assert verdicts[node], f"{node} should conform"
        for node in workload.invalid_nodes:
            assert not verdicts[node], f"{node} should not conform"

    def test_shards_1_falls_back_to_serial(self):
        workload = community()
        validator = ShardedValidator(workload.graph, workload.schema, shards=1)
        report = validator.validate_graph()
        expected = Validator(community().graph,
                             person_schema()).validate_graph()
        assert {(e.node, e.label, e.conforms) for e in report.entries} == \
            {(e.node, e.label, e.conforms) for e in expected.entries}

    def test_delta_revalidation_matches_serial(self):
        serial_wl, sharded_wl = community(), community()
        delta = fix_delta(serial_wl)

        serial = ValidationSession(serial_wl.graph, serial_wl.schema)
        sharded = ValidationSession(sharded_wl.graph, sharded_wl.schema,
                                    shards=2)
        serial.validate()
        sharded.validate()
        serial_resp = serial.apply_delta(DeltaRequest(add=delta))
        sharded_resp = sharded.apply_delta(DeltaRequest(add=delta))
        assert not serial_resp.full_rebuild
        assert not sharded_resp.full_rebuild
        assert serial_resp.conforms == sharded_resp.conforms
        for node in serial_wl.all_nodes:
            lhs = serial.verdict(node)
            rhs = sharded.verdict(node)
            assert lhs.conforms == rhs.conforms, node


class TestByteIdentity:
    def test_default_verdict_json_identical_across_modes(self):
        """Serial, ``jobs=2`` and ``shards=2`` sessions must serialise every
        default (reason-less) verdict response byte-identically."""
        workloads = [community() for _ in range(3)]
        sessions = [
            ValidationSession(workloads[0].graph, workloads[0].schema),
            ValidationSession(workloads[1].graph, workloads[1].schema, jobs=2),
            ValidationSession(workloads[2].graph, workloads[2].schema,
                              shards=2),
        ]
        delta = fix_delta(workloads[0])
        for session in sessions:
            session.validate()
            session.apply_delta(DeltaRequest(add=delta))
        for node in workloads[0].all_nodes:
            payloads = [
                json.dumps(session.verdict(node).to_json(), sort_keys=True)
                for session in sessions
            ]
            assert payloads[0] == payloads[1] == payloads[2], node


class TestShardedDeltaMachinery:
    def test_delta_is_incremental_not_a_rebuild(self):
        workload = community()
        session = ValidationSession(workload.graph, workload.schema, shards=2)
        session.validate()
        response = session.apply_delta(DeltaRequest(add=fix_delta(workload)))
        assert not response.full_rebuild
        assert response.revalidated_pairs < len(workload.all_nodes)
        assert response.reused_pairs > 0

    def test_sharded_delta_matches_fresh_direct_run(self):
        workload = community()
        delta = fix_delta(workload)
        session = ValidationSession(workload.graph, workload.schema, shards=2)
        session.validate()
        session.apply_delta(DeltaRequest(add=delta))

        fresh = community()
        fresh.graph.add_all(iter_ntriples(delta))
        direct = Validator(fresh.graph, person_schema()).validate_graph()
        for entry in direct.entries:
            assert session.verdict(entry.node, entry.label).conforms == \
                entry.conforms, entry.node
