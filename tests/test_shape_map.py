"""Tests for shape maps (fixed and query-based node selection)."""

import pytest

from repro.rdf import BNode, EX, FOAF, Graph, RDF, Triple
from repro.rdf.errors import ParseError
from repro.shex import (
    FixedEntry,
    QueryEntry,
    ShapeLabel,
    ShapeMap,
    Validator,
    parse_shape_map,
)
from repro.workloads import paper_example_graph, person_schema


class TestFixedEntries:
    def test_resolution(self):
        entry = FixedEntry(EX.john, ShapeLabel("Person"))
        assert list(entry.resolve(Graph())) == [(EX.john, ShapeLabel("Person"))]

    def test_text_rendering(self):
        entry = FixedEntry(EX.john, ShapeLabel("Person"))
        assert str(entry) == "<http://example.org/john>@<Person>"

    def test_from_dict(self):
        shape_map = ShapeMap.from_dict({EX.john: "Person", EX.bob: ShapeLabel("Person")})
        resolved = shape_map.resolve(Graph())
        assert resolved == {EX.john: ShapeLabel("Person"), EX.bob: ShapeLabel("Person")}

    def test_later_entries_win(self):
        shape_map = ShapeMap([
            FixedEntry(EX.john, ShapeLabel("A")),
            FixedEntry(EX.john, ShapeLabel("B")),
        ])
        assert shape_map.resolve(Graph()) == {EX.john: ShapeLabel("B")}

    def test_add_rejects_non_entries(self):
        with pytest.raises(TypeError):
            ShapeMap().add("not an entry")


class TestQueryEntries:
    @pytest.fixture
    def graph(self):
        graph = paper_example_graph()
        graph.add(Triple(EX.john, RDF.type, FOAF.Person))
        graph.add(Triple(EX.bob, RDF.type, FOAF.Person))
        return graph

    def test_focus_in_subject_position(self, graph):
        entry = QueryEntry(label=ShapeLabel("Person"), focus_position="subject",
                           predicate=RDF.type, other=FOAF.Person)
        nodes = {node for node, _ in entry.resolve(graph)}
        assert nodes == {EX.john, EX.bob}

    def test_focus_in_object_position(self, graph):
        entry = QueryEntry(label=ShapeLabel("Person"), focus_position="object",
                           predicate=FOAF.knows)
        nodes = {node for node, _ in entry.resolve(graph)}
        assert nodes == {EX.bob}

    def test_wildcard_predicate(self, graph):
        entry = QueryEntry(label=ShapeLabel("Anything"), focus_position="subject")
        nodes = {node for node, _ in entry.resolve(graph)}
        assert nodes == set(graph.nodes())

    def test_literal_focus_nodes_are_skipped(self, graph):
        entry = QueryEntry(label=ShapeLabel("X"), focus_position="object",
                           predicate=FOAF.name)
        assert list(entry.resolve(graph)) == []

    def test_invalid_focus_position(self):
        with pytest.raises(ValueError):
            QueryEntry(label=ShapeLabel("X"), focus_position="predicate")

    def test_text_rendering(self):
        entry = QueryEntry(label=ShapeLabel("Person"), focus_position="subject",
                           predicate=FOAF.knows)
        assert str(entry) == "{FOCUS <http://xmlns.com/foaf/0.1/knows> _}@<Person>"


class TestTextSyntax:
    def test_fixed_entry_with_full_iri(self):
        shape_map = parse_shape_map("<http://example.org/john>@<Person>")
        assert len(shape_map) == 1
        assert shape_map.resolve(Graph()) == {EX.john: ShapeLabel("Person")}

    def test_fixed_entry_with_prefixed_names(self):
        from repro.rdf import NamespaceManager

        namespaces = NamespaceManager(bind_defaults=True)
        namespaces.bind("ex", "http://example.org/")
        shape_map = parse_shape_map("ex:john@ex:PersonShape", namespaces)
        resolved = shape_map.resolve(Graph())
        assert resolved == {EX.john: ShapeLabel("http://example.org/PersonShape")}

    def test_blank_node_entry(self):
        shape_map = parse_shape_map("_:b1@<Person>")
        assert shape_map.resolve(Graph()) == {BNode("b1"): ShapeLabel("Person")}

    def test_multiple_entries_with_commas_and_newlines(self):
        shape_map = parse_shape_map(
            "<http://example.org/john>@<Person>,\n<http://example.org/bob>@<Person>"
        )
        assert len(shape_map) == 2

    def test_query_entry_focus_subject(self):
        graph = paper_example_graph()
        shape_map = parse_shape_map("{FOCUS foaf:knows _}@<Person>")
        resolved = shape_map.resolve(graph)
        assert resolved == {EX.john: ShapeLabel("Person")}

    def test_query_entry_focus_object(self):
        graph = paper_example_graph()
        shape_map = parse_shape_map("{_ foaf:knows FOCUS}@<Person>")
        resolved = shape_map.resolve(graph)
        assert resolved == {EX.bob: ShapeLabel("Person")}

    def test_round_trip_through_str(self):
        shape_map = parse_shape_map("<http://example.org/john>@<Person>")
        assert parse_shape_map(str(shape_map)).resolve(Graph()) == \
            shape_map.resolve(Graph())

    @pytest.mark.parametrize("bad", [
        "just-nonsense",
        "<http://example.org/x>",            # missing @shape
        "{FOCUS FOCUS _}@<S>",               # FOCUS in predicate position
        "{_ foaf:knows _}@<S>",              # no FOCUS at all
        "{FOCUS foaf:knows FOCUS}@<S>",      # two FOCUS positions
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_shape_map(bad)


class TestIntegrationWithValidator:
    def test_validate_via_shape_map(self):
        graph = paper_example_graph()
        shape_map = parse_shape_map(
            "<http://example.org/john>@<Person>, <http://example.org/mary>@<Person>"
        )
        validator = Validator(graph, person_schema())
        report = validator.validate_map(shape_map.resolve(graph))
        assert report.entry_for(EX.john).conforms
        assert not report.entry_for(EX.mary).conforms

    def test_query_shape_map_selects_and_validates_everything(self):
        graph = paper_example_graph()
        shape_map = parse_shape_map("{FOCUS foaf:age _}@<Person>")
        validator = Validator(graph, person_schema())
        report = validator.validate_map(shape_map.resolve(graph))
        assert len(report) == 3
        assert not report.conforms  # :mary is selected and fails
