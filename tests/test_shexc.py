"""Tests for the ShEx compact syntax parser and serialiser."""

import pytest

from repro.rdf import EX, FOAF, IRI, Literal, RDF, XSD
from repro.rdf.errors import ParseError
from repro.shex import (
    AnyValue,
    Arc,
    ConstraintOr,
    DatatypeConstraint,
    IRIStem,
    LanguageTag,
    NodeKind,
    Schema,
    ShapeLabel,
    ShapeRef,
    Star,
    ValueSet,
    Validator,
    iter_subexpressions,
    parse_shexc,
    serialize_shexc,
)
from repro.workloads import paper_example_graph


def arcs_of(schema: Schema, label: str):
    return [sub for sub in iter_subexpressions(schema.expression(label))
            if isinstance(sub, Arc)]


class TestDirectives:
    def test_prefix_and_base(self):
        schema = parse_shexc("""
            BASE <http://example.org/>
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            <S> { foaf:name . }
        """)
        # relative shape labels are resolved against the BASE
        assert ShapeLabel("http://example.org/S") in schema

    def test_start_declaration(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            start = @<B>
            <A> { ex:p . }
            <B> { ex:q . }
        """)
        assert schema.start == ShapeLabel("B")

    def test_single_shape_becomes_start_implicitly(self):
        schema = parse_shexc("PREFIX ex: <http://example.org/>\n<Only> { ex:p . }")
        assert schema.start == ShapeLabel("Only")

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_shexc("<S> { foaf:name . }")

    def test_empty_document_raises(self):
        with pytest.raises(ParseError):
            parse_shexc("PREFIX ex: <http://example.org/>")

    def test_duplicate_shape_raises(self):
        with pytest.raises(ParseError):
            parse_shexc("""
                PREFIX ex: <http://example.org/>
                <S> { ex:p . }
                <S> { ex:q . }
            """)


class TestTripleConstraints:
    def test_example_1_schema_structure(self):
        schema = parse_shexc("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
            <Person> {
              foaf:age   xsd:integer ,
              foaf:name  xsd:string + ,
              foaf:knows @<Person> *
            }
        """)
        arcs = arcs_of(schema, "Person")
        predicates = {arc.predicate.sample() for arc in arcs}
        assert predicates == {FOAF.age, FOAF.name, FOAF.knows}
        age_arc = next(arc for arc in arcs if arc.predicate.sample() == FOAF.age)
        assert isinstance(age_arc.object, DatatypeConstraint)
        assert age_arc.object.datatype == XSD.integer
        knows_arc = next(arc for arc in arcs if arc.predicate.sample() == FOAF.knows)
        assert isinstance(knows_arc.object, ShapeRef)

    def test_semicolon_and_comma_are_interchangeable(self):
        with_comma = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:a [ 1 ] , ex:b [ 2 ] }
        """)
        with_semicolon = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:a [ 1 ] ; ex:b [ 2 ] }
        """)
        assert with_comma.expression("S") == with_semicolon.expression("S")

    def test_alternatives_with_pipe(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:a [ 1 ] | ex:b [ 2 ] }
        """)
        from repro.shex import matches
        from repro.rdf import Triple

        expr = schema.expression("S")
        assert matches(expr, [Triple(EX.n, EX.a, Literal(1))])
        assert matches(expr, [Triple(EX.n, EX.b, Literal(2))])
        assert not matches(expr, [Triple(EX.n, EX.a, Literal(1)),
                                  Triple(EX.n, EX.b, Literal(2))])

    def test_a_keyword_predicate(self):
        schema = parse_shexc("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            <S> { a [ foaf:Person ] }
        """)
        arc = arcs_of(schema, "S")[0]
        assert arc.predicate.sample() == RDF.type

    def test_empty_shape_accepts_only_empty_neighbourhood(self):
        schema = parse_shexc("PREFIX ex: <http://example.org/>\n<S> { }")
        from repro.shex import matches
        from repro.rdf import Triple

        assert matches(schema.expression("S"), [])
        assert not matches(schema.expression("S"), [Triple(EX.n, EX.a, Literal(1))])

    def test_group_with_cardinality(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ( ex:a [ 1 ] ; ex:b [ 1 ] ) ? }
        """)
        from repro.shex import matches
        from repro.rdf import Triple

        expr = schema.expression("S")
        assert matches(expr, [])
        assert matches(expr, [Triple(EX.n, EX.a, Literal(1)), Triple(EX.n, EX.b, Literal(1))])
        assert not matches(expr, [Triple(EX.n, EX.a, Literal(1))])


class TestCardinalities:
    @pytest.fixture
    def schema(self):
        return parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> {
              ex:star  [ 1 2 3 ] * ,
              ex:plus  [ 1 2 3 ] + ,
              ex:opt   [ 1 ] ? ,
              ex:exact [ 1 2 3 ] {2} ,
              ex:range [ 1 2 3 ] {1,3} ,
              ex:open  [ 1 2 3 ] {2,}
            }
        """)

    def test_star_arc_present(self, schema):
        stars = [sub for sub in iter_subexpressions(schema.expression("S"))
                 if isinstance(sub, Star)]
        assert stars  # at least the * and the expansions of + and {2,}

    def test_cardinality_semantics(self):
        from repro.shex import matches
        from repro.rdf import Triple

        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:p [ 1 2 3 4 ] {2,3} }
        """)
        expr = schema.expression("S")
        def neighbourhood(count):
            return [Triple(EX.n, EX.p, Literal(i + 1)) for i in range(count)]
        assert not matches(expr, neighbourhood(1))
        assert matches(expr, neighbourhood(2))
        assert matches(expr, neighbourhood(3))
        assert not matches(expr, neighbourhood(4))

    def test_exact_repeat_bounds(self):
        from repro.shex.shexc import _parse_repeat_bounds

        assert _parse_repeat_bounds("{3}") == (3, 3)
        assert _parse_repeat_bounds("{1,4}") == (1, 4)
        assert _parse_repeat_bounds("{2,}") == (2, None)
        assert _parse_repeat_bounds("{2,*}") == (2, None)


class TestValueExpressions:
    def test_wildcard(self):
        schema = parse_shexc("PREFIX ex: <http://example.org/>\n<S> { ex:p . }")
        assert isinstance(arcs_of(schema, "S")[0].object, AnyValue)

    def test_node_kinds(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:i IRI , ex:b BNODE , ex:l LITERAL , ex:n NONLITERAL }
        """)
        kinds = {arc.predicate.sample().value.rsplit("/", 1)[-1]: arc.object.kind
                 for arc in arcs_of(schema, "S")}
        assert kinds == {"i": NodeKind.IRI, "b": NodeKind.BNODE,
                         "l": NodeKind.LITERAL, "n": NodeKind.NONLITERAL}

    def test_value_set_with_literals_and_iris(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:p [ 1 2.5 "text" "chat"@fr true ex:thing ] }
        """)
        constraint = arcs_of(schema, "S")[0].object
        assert isinstance(constraint, ValueSet)
        assert constraint.matches(Literal("1", datatype=XSD.integer))
        assert constraint.matches(Literal("2.5", datatype=XSD.decimal))
        assert constraint.matches(Literal("text"))
        assert constraint.matches(Literal("chat", lang="fr"))
        assert constraint.matches(Literal("true", datatype=XSD.boolean))
        assert constraint.matches(EX.thing)
        assert not constraint.matches(EX.other)

    def test_value_set_with_stem(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:p [ <http://example.org/colours/>~ ] }
        """)
        constraint = arcs_of(schema, "S")[0].object
        assert isinstance(constraint, IRIStem)
        assert constraint.matches(IRI("http://example.org/colours/red"))
        assert not constraint.matches(EX.thing)

    def test_mixed_value_set_with_stem_builds_disjunction(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:p [ ex:red ex:~ ] }
        """)
        constraint = arcs_of(schema, "S")[0].object
        assert isinstance(constraint, ConstraintOr)
        assert constraint.matches(EX.red)
        assert constraint.matches(EX.anything)

    def test_language_tag_constraint(self):
        schema = parse_shexc("PREFIX ex: <http://example.org/>\n<S> { ex:label @en }")
        constraint = arcs_of(schema, "S")[0].object
        assert isinstance(constraint, LanguageTag)
        assert constraint.matches(Literal("colour", lang="en"))

    def test_facets_on_datatypes(self):
        schema = parse_shexc("""
            PREFIX ex:  <http://example.org/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <S> { ex:age xsd:integer MININCLUSIVE 0 MAXINCLUSIVE 150 ,
                  ex:code xsd:string LENGTH 4 ,
                  ex:id xsd:string PATTERN "^[A-Z]+$" }
        """)
        arcs = {arc.predicate.sample().value.rsplit("/", 1)[-1]: arc.object
                for arc in arcs_of(schema, "S")}
        assert arcs["age"].facets.min_inclusive == 0
        assert arcs["age"].facets.max_inclusive == 150
        assert arcs["code"].facets.length == 4
        assert arcs["id"].facets.pattern == "^[A-Z]+$"

    def test_empty_value_set_rejected(self):
        with pytest.raises(ParseError):
            parse_shexc("PREFIX ex: <http://example.org/>\n<S> { ex:p [ ] }")

    def test_shape_reference_to_prefixed_label(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <A> { ex:child @ex:B * }
            ex:B { ex:leaf [ 1 ] }
        """)
        reference = arcs_of(schema, "A")[0].object
        assert isinstance(reference, ShapeRef)
        assert reference.label == ShapeLabel(EX.B.value)


class TestSerialiser:
    def test_round_trip_preserves_verdicts(self):
        original = parse_shexc("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
            <Person> {
              foaf:age   xsd:integer ,
              foaf:name  xsd:string + ,
              foaf:knows @<Person> *
            }
        """)
        reparsed = parse_shexc(serialize_shexc(original))
        graph = paper_example_graph()
        verdict_original = Validator(graph, original).conforming_nodes("Person")
        verdict_reparsed = Validator(graph, reparsed).conforming_nodes("Person")
        assert verdict_original == verdict_reparsed == [EX.bob, EX.john]

    def test_serialiser_compacts_known_namespaces(self):
        schema = parse_shexc("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
            <S> { foaf:age xsd:integer }
        """)
        text = serialize_shexc(schema)
        assert "foaf:age" in text
        assert "xsd:integer" in text
        assert "PREFIX foaf:" in text

    def test_serialiser_renders_cardinalities(self):
        schema = parse_shexc("""
            PREFIX ex: <http://example.org/>
            <S> { ex:a [ 1 ] + , ex:b [ 1 ] ? , ex:c [ 1 ] * }
        """)
        text = serialize_shexc(schema)
        assert "+" in text and "?" in text and "*" in text

    def test_serialiser_renders_facets_and_value_sets(self):
        schema = parse_shexc("""
            PREFIX ex:  <http://example.org/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <S> { ex:age xsd:integer MININCLUSIVE 0 , ex:colour [ ex:red ex:blue ] }
        """)
        text = serialize_shexc(schema)
        assert "MININCLUSIVE 0" in text
        assert "ex:red" in text or "<http://example.org/red>" in text
        # and the output parses back
        assert parse_shexc(text).expression("S")
