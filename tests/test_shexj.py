"""Tests for the JSON interchange representation of schemas and expressions."""

import json

import pytest

from repro.rdf import BNode, EX, FOAF, Literal, XSD
from repro.shex import (
    EMPTY,
    EPSILON,
    Arc,
    ConstraintAnd,
    ConstraintNot,
    ConstraintOr,
    DatatypeConstraint,
    IRIStem,
    LanguageTag,
    NodeKind,
    NodeKindConstraint,
    PredicateSet,
    Schema,
    ShapeRef,
    Validator,
    arc,
    datatype,
    interleave,
    plus,
    star,
    value_set,
)
from repro.shex.shexj import (
    expression_from_dict,
    expression_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.shex.typing import ShapeLabel
from repro.workloads import paper_example_graph, person_schema


def round_trip(expression):
    return expression_from_dict(expression_to_dict(expression))


class TestExpressionRoundTrip:
    def test_empty_and_epsilon(self):
        assert round_trip(EMPTY) == EMPTY
        assert round_trip(EPSILON) == EPSILON

    def test_simple_arc(self):
        expression = arc(EX.a, value_set(1, "text"))
        assert round_trip(expression) == expression

    def test_arc_with_datatype_and_facets(self):
        expression = arc(EX.age, datatype(XSD.integer, min_inclusive=0, max_inclusive=150))
        assert round_trip(expression) == expression

    def test_arc_with_node_kind(self):
        expression = arc(EX.link, NodeKindConstraint(NodeKind.IRI))
        assert round_trip(expression) == expression

    def test_arc_with_language_and_stem(self):
        for constraint in (LanguageTag("en"), IRIStem("http://example.org/")):
            expression = arc(EX.p, constraint)
            assert round_trip(expression) == expression

    def test_arc_with_boolean_combinators(self):
        constraint = ConstraintOr([
            ConstraintAnd([DatatypeConstraint(XSD.integer), value_set(1, 2)]),
            ConstraintNot(value_set(3)),
        ])
        expression = arc(EX.p, constraint)
        assert round_trip(expression) == expression

    def test_arc_with_shape_reference(self):
        expression = Arc(PredicateSet.single(FOAF.knows), ShapeRef(ShapeLabel("Person")))
        assert round_trip(expression) == expression

    def test_arc_with_predicate_stem_and_wildcard(self):
        for predicates in (PredicateSet(stem="http://example.org/"),
                           PredicateSet(any_predicate=True),
                           PredicateSet([EX.a, EX.b])):
            expression = Arc(predicates, value_set(1))
            assert round_trip(expression) == expression

    def test_composite_expression(self):
        expression = interleave(
            arc(EX.a, value_set(1)),
            plus(arc(EX.b, value_set(1, 2))) | star(arc(EX.c)),
        )
        assert round_trip(expression) == expression

    def test_value_set_term_kinds(self):
        expression = arc(EX.p, value_set(Literal("chat", lang="fr"), EX.thing,
                                         Literal("5", datatype=XSD.integer)))
        assert round_trip(expression) == expression
        # blank nodes survive too
        expression = Arc(PredicateSet.single(EX.p),
                         value_set(BNode("b1")))
        assert round_trip(expression) == expression

    def test_dicts_are_json_serialisable(self):
        expression = interleave(arc(EX.a, value_set(1)),
                                arc(EX.age, datatype(XSD.integer, min_inclusive=0)))
        text = json.dumps(expression_to_dict(expression))
        assert expression_from_dict(json.loads(text)) == expression

    def test_unknown_types_rejected(self):
        with pytest.raises(ValueError):
            expression_from_dict({"type": "Mystery"})
        with pytest.raises(TypeError):
            expression_to_dict("not an expression")


class TestSchemaRoundTrip:
    def test_person_schema(self):
        schema = person_schema()
        restored = schema_from_dict(schema_to_dict(schema))
        assert set(restored.labels()) == set(schema.labels())
        assert restored.start == schema.start
        # semantics preserved: same conforming nodes
        graph = paper_example_graph()
        assert Validator(graph, restored).conforming_nodes("Person") == \
            Validator(graph, schema).conforming_nodes("Person")

    def test_schema_dict_is_json_serialisable(self):
        schema = person_schema()
        text = json.dumps(schema_to_dict(schema))
        restored = schema_from_dict(json.loads(text))
        assert set(restored.labels()) == set(schema.labels())

    def test_schema_without_start(self):
        schema = Schema({"A": arc(EX.p), "B": arc(EX.q)})
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.start is None

    def test_non_schema_dict_rejected(self):
        with pytest.raises(ValueError):
            schema_from_dict({"type": "NotASchema"})
