"""Property-based tests: signature-deduped verdicts equal non-deduped ones.

The neighbourhood-signature cache may only serve a verdict for a subject
whose signature is *closed* — a pure function of graph and schema — so for
any random (schema, graph) pair, bulk validation with the cache on must
produce exactly the verdicts of a run with the cache off.  The schemas
drawn here include shape references (self- and mutually-recursive), the
graphs include self-loops and cross-references, and the property is checked
on the serial path, the ``--jobs 2`` SCC-parallel path and incremental
revalidation after a random mutation.

A regression test rides along for the PR 1 stats contract: report entries
carry independent stats snapshots even when the signature cache serves the
verdict.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import EX, XSD, Literal, Triple
from repro.rdf.columnar import ColumnarGraph
from repro.rdf.graph import Graph
from repro.shex import Validator, arc, datatype, shape_ref, value_set
from repro.shex.expressions import ShapeExpr, And, Or, Star
from repro.shex.node_constraints import PredicateSet
from repro.shex.schema import Schema
from repro.shex.typing import ShapeLabel

PREDICATES = [EX.p, EX.q, EX.r]
NODES = [EX[f"n{i}"] for i in range(5)]
OBJECTS = NODES + [Literal(1), Literal(2), Literal("x")]
LABELS = [ShapeLabel("S0"), ShapeLabel("S1")]


def constraints() -> st.SearchStrategy:
    return st.one_of(
        st.just(datatype(XSD.integer)),
        st.just(datatype(XSD.string)),
        st.builds(lambda values: value_set(*values),
                  st.lists(st.sampled_from([1, 2, "x"]), min_size=1,
                           max_size=2, unique=True)),
        # references make schemas recursive: S0 may point at itself or S1
        st.sampled_from([shape_ref(label) for label in LABELS]),
    )


def arcs() -> st.SearchStrategy[ShapeExpr]:
    return st.builds(lambda p, c: arc(PredicateSet.single(p), c),
                     st.sampled_from(PREDICATES), constraints())


def expressions() -> st.SearchStrategy[ShapeExpr]:
    return st.recursive(
        arcs(),
        lambda children: st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Star, children),
        ),
        max_leaves=5,
    )


def schemas() -> st.SearchStrategy[Schema]:
    return st.builds(
        lambda e0, e1: Schema({LABELS[0]: e0, LABELS[1]: e1}),
        expressions(), expressions())


def triples() -> st.SearchStrategy[Triple]:
    return st.builds(Triple, st.sampled_from(NODES),
                     st.sampled_from(PREDICATES), st.sampled_from(OBJECTS))


def graphs(store=Graph) -> st.SearchStrategy:
    def build(drawn):
        graph = store()
        graph.add_all(drawn)
        return graph
    return st.sets(triples(), min_size=1, max_size=12).map(build)


def _verdicts(report):
    return {(entry.node, entry.label): entry.conforms for entry in report}


def _run(graph, schema, *, cached: bool, jobs: int = 1):
    validator = Validator(graph, schema, jobs=jobs,
                          signature_cache=None if cached else False)
    return validator, validator.validate_graph()


class TestSignatureDedupeIdentity:
    @settings(max_examples=120, deadline=None)
    @given(schema=schemas(), graph=graphs())
    def test_serial_verdicts_identical(self, schema, graph):
        _, cached = _run(graph, schema, cached=True)
        _, uncached = _run(graph, schema, cached=False)
        assert _verdicts(cached) == _verdicts(uncached)

    @settings(max_examples=60, deadline=None)
    @given(schema=schemas(), graph=graphs(store=ColumnarGraph))
    def test_columnar_id_native_verdicts_identical(self, schema, graph):
        _, cached = _run(graph, schema, cached=True)
        _, uncached = _run(graph, schema, cached=False)
        assert _verdicts(cached) == _verdicts(uncached)

    @settings(max_examples=8, deadline=None)
    @given(schema=schemas(), graph=graphs())
    def test_jobs2_verdicts_identical(self, schema, graph):
        _, cached = _run(graph, schema, cached=True, jobs=2)
        _, uncached = _run(graph, schema, cached=False)
        assert _verdicts(cached) == _verdicts(uncached)

    @settings(max_examples=40, deadline=None)
    @given(schema=schemas(), graph=graphs(),
           additions=st.sets(triples(), max_size=4),
           removal_picks=st.lists(st.integers(min_value=0), max_size=3))
    def test_revalidate_after_mutation_identical(self, schema, graph,
                                                 additions, removal_picks):
        validator, _ = _run(graph, schema, cached=True)
        existing = sorted(graph, key=lambda triple: triple.sort_key())
        removals = {existing[pick % len(existing)] for pick in removal_picks}
        added = {triple for triple in additions if triple not in set(existing)}
        if not added and not removals:
            return
        for triple in removals:
            graph.remove(triple)
        graph.add_all(added)
        result = validator.revalidate()
        fresh = Graph()
        fresh.add_all(graph)
        _, uncached = _run(fresh, schema, cached=False)
        assert _verdicts(result.report) == _verdicts(uncached)


class TestStatsSnapshotIndependence:
    """PR 1 contract: entry stats stay independent snapshots under dedupe."""

    def _twin_graph(self):
        # two structurally identical subjects: the second is a cache hit
        graph = Graph()
        for node in (EX.a, EX.b):
            graph.add(Triple(node, EX.p, Literal(1)))
            graph.add(Triple(node, EX.q, Literal("x")))
        return graph

    def _twin_schema(self):
        return Schema({"S": And(arc(PredicateSet.single(EX.p), datatype(XSD.integer)),
                                arc(PredicateSet.single(EX.q), datatype(XSD.string)))})

    def test_hit_entry_has_its_own_snapshot(self):
        validator = Validator(self._twin_graph(), self._twin_schema())
        report = validator.validate_graph()
        entries = {entry.node: entry for entry in report}
        first, second = entries[EX.a], entries[EX.b]
        assert validator.signature_cache is not None
        assert second.stats.signature_hits == 1
        assert second.stats.derivative_steps == 0
        assert first.stats.signature_hits == 0
        assert first.stats.derivative_steps > 0
        assert first.stats is not second.stats

    def test_snapshots_survive_later_runs(self):
        validator = Validator(self._twin_graph(), self._twin_schema())
        report = validator.validate_graph()
        entries = {entry.node: entry for entry in report}
        frozen = {node: entry.stats.as_dict()
                  for node, entry in entries.items()}
        validator.validate_graph()
        validator.validate_node(EX.a, "S")
        for node, entry in entries.items():
            assert entry.stats.as_dict() == frozen[node], node

    def test_verdicts_and_hit_counters_with_conforming_and_failing_twins(self):
        graph = self._twin_graph()
        # break both twins identically on a *faceted* constraint: the value
        # screen refuses facets, so the failure is decided by the engine and
        # the failing verdict is deduped too (a prefilter rejection would
        # short-circuit before the signature probe).
        schema = Schema({"S": And(
            arc(PredicateSet.single(EX.p), datatype(XSD.integer)),
            arc(PredicateSet.single(EX.q), datatype(XSD.string, min_length=1)))})
        graph.add(Triple(EX.c, EX.p, Literal(1)))
        graph.add(Triple(EX.c, EX.q, Literal("")))
        graph.add(Triple(EX.d, EX.p, Literal(1)))
        graph.add(Triple(EX.d, EX.q, Literal("")))
        validator = Validator(graph, schema)
        report = validator.validate_graph()
        verdicts = _verdicts(report)
        label = ShapeLabel("S")
        assert verdicts[(EX.a, label)] and verdicts[(EX.b, label)]
        assert not verdicts[(EX.c, label)] and not verdicts[(EX.d, label)]
        stats = validator.signature_cache.stats()
        assert stats["hits"] >= 2 and stats["dedupes"] >= 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
