"""Tests for the SPARQL evaluator (solution mappings, joins, filters, aggregates)."""

import pytest

from repro.rdf import EX, Graph, Triple
from repro.sparql import SparqlEvaluationError, ask, evaluate_query, select
from repro.workloads import paper_example_graph


@pytest.fixture
def graph() -> Graph:
    return paper_example_graph()


def names(solutions, variable="s"):
    return sorted(solution[variable].n3() for solution in solutions if variable in solution)


class TestBasicGraphPatterns:
    def test_single_pattern(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:age ?age }
        """)
        assert names(solutions) == [
            "<http://example.org/bob>", "<http://example.org/john>",
            "<http://example.org/mary>", "<http://example.org/mary>",
        ]

    def test_join_on_shared_variable(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s ?friendname {
                ?s foaf:knows ?friend .
                ?friend foaf:name ?friendname .
            }
        """)
        assert {solution["friendname"].lexical for solution in solutions} == {"Bob", "Robert"}

    def test_constant_subject(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX : <http://example.org/>
            SELECT ?o { :john foaf:name ?o }
        """)
        assert [solution["o"].lexical for solution in solutions] == ["John"]

    def test_no_match_returns_empty(self, graph):
        assert select(graph, "SELECT ?s { ?s <http://example.org/nothing> ?o }") == []

    def test_ask_true_false(self, graph):
        assert ask(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            ASK { ?s foaf:knows ?o }
        """)
        assert not ask(graph, "ASK { ?s <http://example.org/nothing> ?o }")

    def test_select_on_ask_raises(self, graph):
        with pytest.raises(SparqlEvaluationError):
            select(graph, "ASK { ?s ?p ?o }")
        with pytest.raises(SparqlEvaluationError):
            ask(graph, "SELECT ?s { ?s ?p ?o }")

    def test_same_variable_twice_in_a_pattern(self, graph):
        graph.add(Triple(EX.loop, EX.p, EX.loop))
        solutions = select(graph, "SELECT ?x { ?x <http://example.org/p> ?x }")
        assert names(solutions, "x") == ["<http://example.org/loop>"]


class TestFiltersAndFunctions:
    def test_numeric_comparison(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:age ?age FILTER (?age > 30) }
        """)
        assert "<http://example.org/john>" not in names(solutions)
        assert "<http://example.org/bob>" in names(solutions)

    def test_is_literal_and_datatype(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
            SELECT ?s { ?s foaf:name ?name
                        FILTER (isLiteral(?name) && datatype(?name) = xsd:string) }
        """)
        assert "<http://example.org/john>" in names(solutions)

    def test_is_iri_and_is_blank(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:knows ?o FILTER isIRI(?o) }
        """)
        assert names(solutions) == ["<http://example.org/john>"]
        assert not select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:knows ?o FILTER isBlank(?o) }
        """)

    def test_negation_and_bound(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:age ?age
                        OPTIONAL { ?s foaf:knows ?friend }
                        FILTER (!bound(?friend)) }
        """)
        assert "<http://example.org/john>" not in names(solutions)
        assert "<http://example.org/bob>" in names(solutions)

    def test_string_functions(self, graph):
        assert ask(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            ASK { ?s foaf:name ?n FILTER (strlen(?n) = 6 && strstarts(?n, "Rob")) }
        """)
        assert ask(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            ASK { ?s foaf:name ?n FILTER regex(?n, "^jo", "i") }
        """)

    def test_arithmetic_in_filters(self, graph):
        assert ask(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            ASK { ?s foaf:age ?age FILTER (?age * 2 = 46) }
        """)

    def test_type_error_makes_filter_fail_not_crash(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:name ?name FILTER (?name > 100) }
        """)
        assert solutions == []

    def test_sameterm_and_str(self, graph):
        assert ask(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX : <http://example.org/>
            ASK { ?s foaf:knows ?o FILTER sameTerm(?o, :bob) }
        """)
        assert ask(graph, """
            PREFIX : <http://example.org/>
            ASK { ?s ?p ?o FILTER (str(?p) = "http://xmlns.com/foaf/0.1/age") }
        """)


class TestOptionalAndUnion:
    def test_optional_keeps_unmatched_solutions(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s ?friend { ?s foaf:age ?age OPTIONAL { ?s foaf:knows ?friend } }
        """)
        by_subject = {}
        for solution in solutions:
            by_subject.setdefault(solution["s"], []).append(solution)
        assert any("friend" in s for s in by_subject[EX.john])
        assert all("friend" not in s for s in by_subject[EX.bob])

    def test_union_combines_branches(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?who { { ?who foaf:knows ?x } UNION { ?x foaf:knows ?who } }
        """)
        assert names(solutions, "who") == [
            "<http://example.org/bob>", "<http://example.org/john>",
        ]


class TestAggregation:
    def test_count_star_group_by(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s (COUNT(*) AS ?c) { ?s foaf:age ?o } GROUP BY ?s
        """)
        counts = {solution["s"]: solution["c"].to_python() for solution in solutions}
        assert counts[EX.mary] == 2
        assert counts[EX.john] == 1

    def test_having_filters_groups(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:age ?o } GROUP BY ?s HAVING (COUNT(*) = 1)
        """)
        assert names(solutions) == ["<http://example.org/bob>", "<http://example.org/john>"]

    def test_count_over_empty_match_is_zero(self, graph):
        solutions = select(graph, """
            PREFIX : <http://example.org/>
            SELECT (COUNT(*) AS ?c) { :john :nothing ?o }
        """)
        assert len(solutions) == 1
        assert solutions[0]["c"].to_python() == 0

    def test_count_distinct(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT (COUNT(DISTINCT ?s) AS ?c) { ?s foaf:name ?n }
        """)
        assert solutions[0]["c"].to_python() == 2

    def test_sum_min_max_avg(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT (SUM(?age) AS ?total) (MIN(?age) AS ?low)
                   (MAX(?age) AS ?high) (AVG(?age) AS ?mean)
            { <http://example.org/mary> foaf:age ?age }
        """)
        row = solutions[0]
        assert row["total"].to_python() == 115
        assert row["low"].to_python() == 50
        assert row["high"].to_python() == 65
        assert row["mean"].to_python() == 57.5

    def test_sub_select_joined_with_outer_pattern(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s ?c {
                ?s foaf:name ?name .
                { SELECT ?s (COUNT(*) AS ?c) { ?s foaf:age ?o } GROUP BY ?s }
            }
        """)
        counts = {solution["s"]: solution["c"].to_python() for solution in solutions}
        assert counts == {EX.john: 1, EX.bob: 1}


class TestSolutionModifiers:
    def test_distinct(self, graph):
        plain = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s { ?s foaf:name ?n }
        """)
        distinct = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT DISTINCT ?s { ?s foaf:name ?n }
        """)
        assert len(plain) == 3
        assert len(distinct) == 2

    def test_order_by_limit_offset(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?age { ?s foaf:age ?age } ORDER BY ?age LIMIT 2 OFFSET 1
        """)
        assert [solution["age"].to_python() for solution in solutions] == [34, 50]

    def test_order_by_desc(self, graph):
        solutions = select(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?age { ?s foaf:age ?age } ORDER BY DESC(?age) LIMIT 1
        """)
        assert solutions[0]["age"].to_python() == 65

    def test_query_result_helpers(self, graph):
        result = evaluate_query(graph, """
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?s ?age { ?s foaf:age ?age }
        """)
        assert result.kind == "select"
        assert len(result) == 4
        assert set(result.variables) == {"s", "age"}
        assert len(result.bindings_for("age")) == 4
        ask_result = evaluate_query(graph, "ASK { ?s ?p ?o }")
        assert ask_result.kind == "ask" and bool(ask_result)


class TestPaperExample4:
    """A faithful rendition of the paper's Example 4 query, evaluated end-to-end."""

    QUERY_TEMPLATE = """
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
    ASK {{
      {{ SELECT (COUNT(*) AS ?age_total) {{ <{node}> foaf:age ?o . }} }}
      FILTER (?age_total = 1)
      {{ SELECT (COUNT(*) AS ?age_ok) {{
           <{node}> foaf:age ?o .
           FILTER ( isLiteral(?o) && datatype(?o) = xsd:integer )
      }} }}
      FILTER (?age_ok = 1)
      {{ SELECT (COUNT(*) AS ?name_total) {{ <{node}> foaf:name ?o . }} }}
      FILTER (?name_total >= 1)
      {{ SELECT (COUNT(*) AS ?name_ok) {{
           <{node}> foaf:name ?o .
           FILTER (isLiteral(?o) && datatype(?o) = xsd:string)
      }} }}
      FILTER (?name_total = ?name_ok)
      {{
        {{ SELECT (COUNT(*) AS ?knows_total) {{ <{node}> foaf:knows ?o . }} }}
        {{ SELECT (COUNT(*) AS ?knows_ok) {{
             <{node}> foaf:knows ?o .
             FILTER ((isIRI(?o) || isBlank(?o)))
        }} }}
        FILTER (?knows_total = ?knows_ok && ?knows_total >= 1)
      }} UNION {{
        {{ SELECT (1 AS ?noknows) {{
             OPTIONAL {{ <{node}> foaf:knows ?o }}
             FILTER (!bound(?o))
        }} }}
      }}
    }}
    """

    @pytest.mark.parametrize("node, expected", [
        ("http://example.org/john", True),
        ("http://example.org/bob", True),
        ("http://example.org/mary", False),
    ])
    def test_verdicts_match_the_paper(self, graph, node, expected):
        query = self.QUERY_TEMPLATE.format(node=node)
        assert ask(graph, query) is expected
