"""Tests for the ShEx → SPARQL compiler and the SPARQL validation engine."""

import pytest

from repro.rdf import EX, FOAF, Graph, IRI, Literal, Triple, XSD
from repro.shex import (
    NodeKind,
    NodeKindConstraint,
    Schema,
    Validator,
    arc,
    datatype,
    interleave,
    interleave_all,
    optional,
    plus,
    repeat,
    star,
    value_set,
)
from repro.shex.node_constraints import IRIStem, LanguageTag
from repro.shex.sparql_gen import (
    PredicateSpec,
    SparqlCompilationError,
    SparqlEngine,
    flatten_expression,
    shape_to_sparql_ask,
    shape_to_sparql_select,
)
from repro.sparql import ask, select
from repro.workloads import (
    generate_person_workload,
    paper_example_graph,
    person_schema,
)


class TestFlattening:
    def test_single_arc(self):
        specs = flatten_expression(arc(FOAF.age, datatype(XSD.integer)))
        assert len(specs) == 1
        assert specs[0].predicate == FOAF.age
        assert (specs[0].min_count, specs[0].max_count) == (1, 1)

    def test_star_plus_optional(self):
        expression = interleave_all(
            star(arc(EX.a, value_set(1))),
            plus(arc(EX.b, value_set(1))),
            optional(arc(EX.c, value_set(1))),
        )
        bounds = {spec.predicate: (spec.min_count, spec.max_count)
                  for spec in flatten_expression(expression)}
        assert bounds[EX.a] == (0, None)
        assert bounds[EX.b] == (1, None)
        assert bounds[EX.c] == (0, 1)

    def test_repeat_ranges(self):
        expression = repeat(arc(EX.p, value_set(1, 2, 3, 4)), 2, 4)
        (spec,) = flatten_expression(expression)
        assert (spec.min_count, spec.max_count) == (2, 4)

    def test_epsilon_flattens_to_nothing(self):
        from repro.shex import EPSILON

        assert flatten_expression(EPSILON) == []

    def test_person_shape_flattens(self):
        specs = flatten_expression(person_schema().expression("Person"))
        assert {spec.predicate for spec in specs} == {FOAF.age, FOAF.name, FOAF.knows}

    def test_alternative_between_predicates_rejected(self):
        expression = arc(EX.a, value_set(1)) | arc(EX.b, value_set(1))
        with pytest.raises(SparqlCompilationError):
            flatten_expression(expression)

    def test_star_over_group_rejected(self):
        expression = star(interleave(arc(EX.a, value_set(1)), arc(EX.b, value_set(1))))
        with pytest.raises(SparqlCompilationError):
            flatten_expression(expression)

    def test_conflicting_constraints_for_same_predicate_rejected(self):
        expression = interleave(arc(EX.a, value_set(1)), arc(EX.a, value_set(2)))
        with pytest.raises(SparqlCompilationError):
            flatten_expression(expression)

    def test_empty_shape_rejected(self):
        from repro.shex import EMPTY

        with pytest.raises(SparqlCompilationError):
            flatten_expression(EMPTY)

    def test_merge_same_constraint_adds_bounds(self):
        spec = PredicateSpec(EX.a, value_set(1), 1, 1)
        merged = spec.merge_sequential(PredicateSpec(EX.a, value_set(1), 0, 2))
        assert (merged.min_count, merged.max_count) == (1, 3)


class TestAskGeneration:
    def test_john_and_mary_verdicts(self):
        graph = paper_example_graph()
        expression = person_schema().expression("Person")
        assert ask(graph, shape_to_sparql_ask(expression, EX.john,
                                              approximate_references=True))
        assert ask(graph, shape_to_sparql_ask(expression, EX.bob,
                                              approximate_references=True))
        assert not ask(graph, shape_to_sparql_ask(expression, EX.mary,
                                                  approximate_references=True))

    def test_closedness_is_enforced(self):
        graph = paper_example_graph()
        graph.add(Triple(EX.john, EX.undeclared, Literal("extra")))
        expression = person_schema().expression("Person")
        closed_query = shape_to_sparql_ask(expression, EX.john,
                                           approximate_references=True, closed=True)
        open_query = shape_to_sparql_ask(expression, EX.john,
                                         approximate_references=True, closed=False)
        assert not ask(graph, closed_query)
        assert ask(graph, open_query)

    def test_recursion_not_expressible_without_approximation(self):
        expression = person_schema().expression("Person")
        with pytest.raises(SparqlCompilationError):
            shape_to_sparql_ask(expression, EX.john, approximate_references=False)

    def test_blank_focus_node_rejected(self):
        from repro.rdf import BNode

        expression = arc(EX.a, value_set(1))
        with pytest.raises(SparqlCompilationError):
            shape_to_sparql_ask(expression, BNode("b"))

    def test_facets_become_filters(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.size, Literal(-5)))
        expression = arc(EX.size, datatype(XSD.integer, min_inclusive=0))
        query = shape_to_sparql_ask(expression, EX.n)
        assert ">= 0" in query
        assert not ask(graph, query)
        graph2 = Graph([Triple(EX.n, EX.size, Literal(5))])
        assert ask(graph2, query)

    def test_node_kind_and_stem_and_language_filters(self):
        graph = Graph()
        graph.add(Triple(EX.n, EX.link, EX.target))
        graph.add(Triple(EX.n, EX.colour, IRI("http://example.org/colours/red")))
        graph.add(Triple(EX.n, EX.label, Literal("colour", lang="en")))
        expression = interleave_all(
            arc(EX.link, NodeKindConstraint(NodeKind.IRI)),
            arc(EX.colour, IRIStem("http://example.org/colours/")),
            arc(EX.label, LanguageTag("en")),
        )
        assert ask(graph, shape_to_sparql_ask(expression, EX.n))

    def test_value_set_filter(self):
        graph = Graph([Triple(EX.n, EX.status, Literal("active"))])
        expression = arc(EX.status, value_set("active", "inactive"))
        assert ask(graph, shape_to_sparql_ask(expression, EX.n))
        bad_graph = Graph([Triple(EX.n, EX.status, Literal("broken"))])
        assert not ask(bad_graph, shape_to_sparql_ask(expression, EX.n))


class TestSelectGeneration:
    def test_select_returns_conforming_nodes(self):
        graph = paper_example_graph()
        expression = person_schema().expression("Person")
        query = shape_to_sparql_select(expression, approximate_references=True)
        nodes = sorted(solution["node"] for solution in select(graph, query))
        assert nodes == [EX.bob, EX.john]

    def test_select_with_custom_variable(self):
        expression = arc(FOAF.name, datatype(XSD.string))
        query = shape_to_sparql_select(expression, var="who")
        assert "?who" in query

    def test_empty_shape_rejected(self):
        from repro.shex import EPSILON

        with pytest.raises(SparqlCompilationError):
            shape_to_sparql_select(EPSILON)


class TestSparqlEngine:
    def test_engine_agrees_with_derivatives_on_non_recursive_shapes(self):
        # a non-recursive variant of the Person shape, where SPARQL is exact
        schema = Schema.single("Person", interleave_all(
            arc(FOAF.age, datatype(XSD.integer)),
            plus(arc(FOAF.name, datatype(XSD.string))),
            star(arc(FOAF.knows, NodeKindConstraint(NodeKind.NONLITERAL))),
        ))
        workload = generate_person_workload(num_people=25, invalid_fraction=0.4, seed=3)
        derivative_nodes = Validator(workload.graph, schema).conforming_nodes("Person")
        sparql_nodes = Validator(workload.graph, schema,
                                 engine=SparqlEngine()).conforming_nodes("Person")
        assert derivative_nodes == sparql_nodes

    def test_empty_neighbourhood_uses_nullability(self):
        engine = SparqlEngine()
        assert engine.match_neighbourhood(star(arc(EX.p)), frozenset()).matched
        assert not engine.match_neighbourhood(arc(EX.p), frozenset()).matched

    def test_uncompilable_expression_reports_failure(self):
        engine = SparqlEngine()
        expression = star(interleave(arc(EX.a, value_set(1)), arc(EX.b, value_set(1))))
        triples = frozenset({Triple(EX.n, EX.a, Literal(1)), Triple(EX.n, EX.b, Literal(1))})
        result = engine.match_neighbourhood(expression, triples)
        assert not result.matched
        assert "not SPARQL-compilable" in result.reason

    def test_conforming_nodes_via_single_select(self):
        graph = paper_example_graph()
        expression = person_schema().expression("Person")
        engine = SparqlEngine()
        assert engine.conforming_nodes(graph, expression) == [EX.bob, EX.john]
