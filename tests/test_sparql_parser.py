"""Tests for the SPARQL tokenizer and parser."""

import pytest

from repro.rdf import FOAF, IRI, Literal, RDF, XSD
from repro.sparql import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryOp,
    FunctionCall,
    OptionalPattern,
    SelectQuery,
    SparqlParseError,
    SubSelectPattern,
    TriplePattern,
    UnaryOp,
    UnionPattern,
    Variable,
    VariableExpr,
    parse_query,
)
from repro.sparql.tokenizer import tokenize


class TestTokenizer:
    def test_keywords_are_case_insensitive(self):
        kinds = [token.kind for token in tokenize("select Select SELECT")]
        assert kinds[:3] == ["KEYWORD"] * 3

    def test_variables(self):
        tokens = tokenize("?x $y")
        assert [token.kind for token in tokens[:2]] == ["VAR", "VAR"]

    def test_operators(self):
        kinds = [token.kind for token in tokenize("!= <= >= && || ! = < >")]
        assert kinds[:9] == ["NEQ", "LE", "GE", "AND", "OR", "BANG", "EQ", "LT", "GT"]

    def test_iri_vs_less_than(self):
        tokens = tokenize("?x < 5 . ?s <http://example.org/p> ?o")
        kinds = [token.kind for token in tokens]
        assert "LT" in kinds
        assert "IRIREF" in kinds

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT # comment\n ?x")
        assert [token.kind for token in tokens[:2]] == ["KEYWORD", "VAR"]

    def test_error_position(self):
        with pytest.raises(SparqlParseError) as info:
            tokenize("SELECT ?x ~")
        assert info.value.line == 1


class TestParserForms:
    def test_simple_select(self):
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o }")
        assert isinstance(query, SelectQuery)
        assert query.projections[0].variable == Variable("s")
        bgp = query.where.elements[0]
        assert isinstance(bgp, BGP)
        assert bgp.patterns[0] == TriplePattern(Variable("s"), Variable("p"), Variable("o"))

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert query.select_all

    def test_select_distinct(self):
        assert parse_query("SELECT DISTINCT ?s { ?s ?p ?o }").distinct

    def test_where_keyword_is_optional(self):
        query = parse_query("SELECT ?s { ?s ?p ?o }")
        assert isinstance(query, SelectQuery)

    def test_ask(self):
        query = parse_query("ASK { ?s ?p ?o }")
        assert isinstance(query, AskQuery)

    def test_prefixes_are_expanded(self):
        query = parse_query("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?name { ?person foaf:name ?name }
        """)
        pattern = query.where.elements[0].patterns[0]
        assert pattern.predicate == FOAF.name

    def test_a_keyword_expands_to_rdf_type(self):
        query = parse_query("SELECT ?s { ?s a <http://example.org/T> }")
        assert query.where.elements[0].patterns[0].predicate == RDF.type

    def test_literals_in_object_position(self):
        query = parse_query('SELECT ?s { ?s ?p "text" . ?s ?q 42 . ?s ?r true }')
        objects = [pattern.object for pattern in query.where.elements[0].patterns]
        assert Literal("text") in objects
        assert Literal("42", datatype=XSD.integer) in objects
        assert Literal("true", datatype=XSD.boolean) in objects

    def test_typed_and_language_literals(self):
        query = parse_query("""
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            SELECT ?s { ?s ?p "2021-01-01"^^xsd:date . ?s ?q "chat"@fr }
        """)
        objects = [pattern.object for pattern in query.where.elements[0].patterns]
        assert Literal("2021-01-01", datatype=XSD.date) in objects
        assert Literal("chat", lang="fr") in objects

    def test_predicate_object_and_object_lists(self):
        query = parse_query("SELECT ?s { ?s <http://e.org/p> 1, 2 ; <http://e.org/q> 3 }")
        patterns = query.where.elements[0].patterns
        assert len(patterns) == 3

    def test_missing_projection_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT WHERE { ?s ?p ?o }")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("ASK { ?s ?p ?o } garbage")

    def test_unknown_prefix_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?s { ?s foaf:name ?n }")


class TestPatterns:
    def test_filter_collected_at_group_level(self):
        query = parse_query("SELECT ?s { ?s ?p ?o FILTER (?o > 5) }")
        assert len(query.where.filters) == 1
        assert isinstance(query.where.filters[0], BinaryOp)

    def test_filter_with_function_call(self):
        query = parse_query("SELECT ?s { ?s ?p ?o FILTER isLiteral(?o) }")
        assert isinstance(query.where.filters[0], FunctionCall)

    def test_optional(self):
        query = parse_query("SELECT ?s { ?s ?p ?o OPTIONAL { ?s ?q ?r } }")
        optional = [element for element in query.where.elements
                    if isinstance(element, OptionalPattern)]
        assert len(optional) == 1
        # the base BGP stays before the OPTIONAL
        assert isinstance(query.where.elements[0], BGP)

    def test_union(self):
        query = parse_query("SELECT ?s { { ?s ?p 1 } UNION { ?s ?p 2 } UNION { ?s ?p 3 } }")
        union = query.where.elements[0]
        assert isinstance(union, UnionPattern)
        assert len(union.branches) == 3

    def test_sub_select(self):
        query = parse_query("""
            SELECT ?s { { SELECT ?s (COUNT(*) AS ?c) { ?s ?p ?o } GROUP BY ?s } }
        """)
        sub = query.where.elements[0].elements[0]
        assert isinstance(sub, SubSelectPattern)
        assert sub.query.group_by == (Variable("s"),)

    def test_group_by_having_limit_offset_order(self):
        query = parse_query("""
            SELECT ?s (COUNT(*) AS ?c) { ?s ?p ?o }
            GROUP BY ?s HAVING (COUNT(*) >= 2)
            ORDER BY ?s LIMIT 5 OFFSET 1
        """)
        assert query.group_by == (Variable("s"),)
        assert len(query.having) == 1
        assert query.limit == 5
        assert query.offset == 1
        assert len(query.order_by) == 1

    def test_unknown_function_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?s { ?s ?p ?o FILTER mystery(?o) }")


class TestExpressions:
    def extract_filter(self, text: str):
        return parse_query(f"SELECT ?s {{ ?s ?p ?o FILTER ({text}) }}").where.filters[0]

    def test_precedence_of_and_or(self):
        expression = self.extract_filter("?a = 1 || ?b = 2 && ?c = 3")
        assert isinstance(expression, BinaryOp)
        assert expression.operator == "||"
        assert expression.right.operator == "&&"

    def test_not_binds_tightly(self):
        expression = self.extract_filter("!bound(?x) && ?y = 1")
        assert expression.operator == "&&"
        assert isinstance(expression.left, UnaryOp)

    def test_arithmetic(self):
        expression = self.extract_filter("?a + 2 * 3 = 7")
        assert expression.operator == "="
        assert expression.left.operator == "+"
        assert expression.left.right.operator == "*"

    def test_comparison_operators(self):
        for operator in ("=", "!=", "<", ">", "<=", ">="):
            expression = self.extract_filter(f"?a {operator} 1")
            assert expression.operator == operator

    def test_aggregate_in_projection(self):
        query = parse_query("SELECT (COUNT(DISTINCT ?o) AS ?c) { ?s ?p ?o }")
        aggregate = query.projections[0].expression
        assert isinstance(aggregate, Aggregate)
        assert aggregate.distinct
        assert isinstance(aggregate.argument, VariableExpr)

    def test_count_star(self):
        query = parse_query("SELECT (COUNT(*) AS ?c) { ?s ?p ?o }")
        assert query.projections[0].expression.argument is None

    def test_nested_parentheses(self):
        expression = self.extract_filter("((?a = 1))")
        assert isinstance(expression, BinaryOp)

    def test_iri_constant_in_expression(self):
        expression = self.extract_filter("datatype(?o) = <http://www.w3.org/2001/XMLSchema#integer>")
        assert expression.right.term == IRI("http://www.w3.org/2001/XMLSchema#integer")
