"""Unit tests for the RDF term model (IRI, BNode, Literal, Triple)."""

import pytest

from repro.rdf import (
    BNode,
    IRI,
    Literal,
    Triple,
    XSD,
    is_object_term,
    is_predicate_term,
    is_subject_term,
)


class TestIRI:
    def test_value_round_trip(self):
        iri = IRI("http://example.org/thing")
        assert iri.value == "http://example.org/thing"
        assert str(iri) == "http://example.org/thing"

    def test_n3_form(self):
        assert IRI("http://example.org/x").n3() == "<http://example.org/x>"

    def test_equality_and_hash(self):
        assert IRI("http://example.org/a") == IRI("http://example.org/a")
        assert IRI("http://example.org/a") != IRI("http://example.org/b")
        assert hash(IRI("http://example.org/a")) == hash(IRI("http://example.org/a"))
        assert len({IRI("http://e.org/a"), IRI("http://e.org/a")}) == 1

    def test_not_equal_to_other_kinds(self):
        assert IRI("http://example.org/a") != BNode("a")
        assert IRI("http://example.org/a") != Literal("http://example.org/a")

    def test_rejects_empty_value(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_rejects_illegal_characters(self):
        with pytest.raises(ValueError):
            IRI("http://example.org/has space")
        with pytest.raises(ValueError):
            IRI("http://example.org/<angle>")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            IRI(42)

    def test_is_immutable(self):
        iri = IRI("http://example.org/x")
        with pytest.raises(AttributeError):
            iri.value = "http://example.org/y"

    def test_concat(self):
        base = IRI("http://example.org/")
        assert base.concat("item") == IRI("http://example.org/item")

    def test_ordering(self):
        assert IRI("http://a.example/") < IRI("http://b.example/")
        assert not IRI("http://b.example/") < IRI("http://a.example/")


class TestBNode:
    def test_explicit_identifier(self):
        assert BNode("node1").id == "node1"
        assert BNode("node1").n3() == "_:node1"

    def test_fresh_identifiers_are_unique(self):
        generated = {BNode().id for _ in range(100)}
        assert len(generated) == 100

    def test_equality_by_identifier(self):
        assert BNode("x") == BNode("x")
        assert BNode("x") != BNode("y")

    def test_rejects_empty_identifier(self):
        with pytest.raises(ValueError):
            BNode("")

    def test_is_immutable(self):
        node = BNode("x")
        with pytest.raises(AttributeError):
            node.id = "y"

    def test_sorts_after_iris(self):
        assert IRI("http://z.example/") < BNode("a")


class TestLiteral:
    def test_plain_string(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.datatype == XSD.string
        assert literal.lang is None
        assert literal.is_plain
        assert literal.n3() == '"hello"'

    def test_integer_coercion(self):
        literal = Literal(23)
        assert literal.lexical == "23"
        assert literal.datatype == XSD.integer
        assert literal.n3() == '"23"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_float_coercion(self):
        literal = Literal(1.5)
        assert literal.datatype == XSD.double
        assert literal.to_python() == 1.5

    def test_boolean_coercion(self):
        assert Literal(True).lexical == "true"
        assert Literal(False).lexical == "false"
        assert Literal(True).datatype == XSD.boolean

    def test_bool_is_not_integer(self):
        # bool is a subclass of int in Python; make sure True maps to xsd:boolean
        assert Literal(True).datatype == XSD.boolean
        assert Literal(1).datatype == XSD.integer

    def test_language_tagged(self):
        literal = Literal("chat", lang="FR")
        assert literal.lang == "fr"  # normalised to lower case
        assert literal.n3() == '"chat"@fr'
        assert not literal.is_plain

    def test_invalid_language_tag(self):
        with pytest.raises(ValueError):
            Literal("x", lang="not a tag!")

    def test_explicit_datatype(self):
        literal = Literal("2021-01-01", datatype=XSD.date)
        assert literal.datatype == XSD.date

    def test_language_with_wrong_datatype_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, lang="en")

    def test_rejects_unsupported_python_values(self):
        with pytest.raises(TypeError):
            Literal([1, 2, 3])

    def test_equality_includes_datatype_and_language(self):
        assert Literal("1") != Literal(1)
        assert Literal("a", lang="en") != Literal("a", lang="de")
        assert Literal("a", lang="en") == Literal("a", lang="en")

    def test_escaping_in_n3(self):
        literal = Literal('she said "hi"\nthen left\t.')
        rendered = literal.n3()
        assert '\\"hi\\"' in rendered
        assert "\\n" in rendered
        assert "\\t" in rendered

    def test_to_python_for_integers(self):
        assert Literal(23).to_python() == 23
        assert Literal("23", datatype=XSD.integer).to_python() == 23

    def test_is_immutable(self):
        literal = Literal("x")
        with pytest.raises(AttributeError):
            literal.lexical = "y"

    def test_sorts_after_bnodes(self):
        assert BNode("zzz") < Literal("aaa")


class TestTriple:
    def test_construction_and_access(self):
        triple = Triple(IRI("http://e.org/s"), IRI("http://e.org/p"), Literal(1))
        assert triple.subject == IRI("http://e.org/s")
        assert triple.predicate == IRI("http://e.org/p")
        assert triple.object == Literal(1)

    def test_unpacking(self):
        triple = Triple(IRI("http://e.org/s"), IRI("http://e.org/p"), Literal(1))
        s, p, o = triple
        assert (s, p, o) == (triple.subject, triple.predicate, triple.object)

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("x"), IRI("http://e.org/p"), Literal(1))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("http://e.org/s"), BNode("p"), Literal(1))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("http://e.org/s"), Literal("p"), Literal(1))

    def test_bnode_subject_and_object_allowed(self):
        triple = Triple(BNode("s"), IRI("http://e.org/p"), BNode("o"))
        assert is_subject_term(triple.subject)
        assert is_object_term(triple.object)

    def test_equality_and_hash(self):
        a = Triple(IRI("http://e.org/s"), IRI("http://e.org/p"), Literal(1))
        b = Triple(IRI("http://e.org/s"), IRI("http://e.org/p"), Literal(1))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_n3(self):
        triple = Triple(IRI("http://e.org/s"), IRI("http://e.org/p"), Literal("x"))
        assert triple.n3() == '<http://e.org/s> <http://e.org/p> "x" .'

    def test_replace(self):
        triple = Triple(IRI("http://e.org/s"), IRI("http://e.org/p"), Literal(1))
        replaced = triple.replace(object=Literal(2))
        assert replaced.object == Literal(2)
        assert replaced.subject == triple.subject
        assert triple.object == Literal(1)  # original unchanged

    def test_sorting_is_deterministic(self):
        t1 = Triple(IRI("http://e.org/a"), IRI("http://e.org/p"), Literal(1))
        t2 = Triple(IRI("http://e.org/b"), IRI("http://e.org/p"), Literal(1))
        t3 = Triple(IRI("http://e.org/a"), IRI("http://e.org/q"), Literal(1))
        assert sorted([t2, t3, t1], key=Triple.sort_key)[0] == t1


class TestVocabularyPredicates:
    def test_subject_vocabulary(self):
        assert is_subject_term(IRI("http://e.org/x"))
        assert is_subject_term(BNode("b"))
        assert not is_subject_term(Literal("x"))

    def test_predicate_vocabulary(self):
        assert is_predicate_term(IRI("http://e.org/x"))
        assert not is_predicate_term(BNode("b"))
        assert not is_predicate_term(Literal("x"))

    def test_object_vocabulary(self):
        assert is_object_term(IRI("http://e.org/x"))
        assert is_object_term(BNode("b"))
        assert is_object_term(Literal("x"))
        assert not is_object_term("plain python string")
