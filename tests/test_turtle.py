"""Unit tests for the Turtle parser and serialiser."""

import pytest

from repro.rdf import BNode, EX, FOAF, Graph, IRI, Literal, RDF, Triple, XSD, parse_turtle
from repro.rdf.errors import ParseError


class TestDirectives:
    def test_at_prefix(self):
        graph = parse_turtle("@prefix ex: <http://example.org/> .\nex:s ex:p ex:o .")
        assert Triple(EX.s, EX.p, EX.o) in graph

    def test_sparql_style_prefix(self):
        graph = parse_turtle("PREFIX ex: <http://example.org/>\nex:s ex:p ex:o .")
        assert Triple(EX.s, EX.p, EX.o) in graph

    def test_empty_prefix(self):
        graph = parse_turtle("@prefix : <http://example.org/> .\n:s :p :o .")
        assert Triple(EX.s, EX.p, EX.o) in graph

    def test_base_resolution(self):
        graph = parse_turtle("@base <http://example.org/> .\n<s> <p> <o> .")
        assert Triple(EX.s, EX.p, EX.o) in graph

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("ex:s ex:p ex:o .")

    def test_prefixes_survive_into_graph(self):
        graph = parse_turtle("@prefix ex: <http://example.org/> .\nex:s ex:p ex:o .")
        assert graph.namespaces.expand("ex:s") == EX.s


class TestTriplesSyntax:
    def test_predicate_object_lists(self):
        graph = parse_turtle("""
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            @prefix : <http://example.org/> .
            :john foaf:age 23 ; foaf:name "John" ; foaf:knows :bob .
        """)
        assert len(graph) == 3
        assert Triple(EX.john, FOAF.age, Literal(23)) in graph

    def test_object_lists(self):
        graph = parse_turtle("""
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            @prefix : <http://example.org/> .
            :bob foaf:name "Bob", "Robert" .
        """)
        assert len(graph) == 2

    def test_a_keyword_is_rdf_type(self):
        graph = parse_turtle("""
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            @prefix : <http://example.org/> .
            :john a foaf:Person .
        """)
        assert Triple(EX.john, RDF.type, FOAF.Person) in graph

    def test_trailing_semicolon_before_dot(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            :s :p :o ; .
        """)
        assert len(graph) == 1

    def test_blank_node_label(self):
        graph = parse_turtle("@prefix : <http://example.org/> .\n_:x :p :o .")
        assert Triple(BNode("x"), EX.p, EX.o) in graph

    def test_anonymous_blank_node_object(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            :s :p [ :q 1 ; :r 2 ] .
        """)
        assert len(graph) == 3
        inner = next(t.object for t in graph if t.predicate == EX.p)
        assert isinstance(inner, BNode)
        assert graph.value(inner, EX.q) == Literal(1)

    def test_anonymous_blank_node_as_subject(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            [ :p 1 ] :q 2 .
        """)
        assert len(graph) == 2

    def test_collections(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            :s :p ( 1 2 3 ) .
        """)
        head = graph.value(EX.s, EX.p)
        items = []
        current = head
        while current != RDF.nil:
            items.append(graph.value(current, RDF.first))
            current = graph.value(current, RDF.rest)
        assert items == [Literal(1), Literal(2), Literal(3)]

    def test_empty_collection_is_rdf_nil(self):
        graph = parse_turtle("@prefix : <http://example.org/> .\n:s :p ( ) .")
        assert graph.value(EX.s, EX.p) == RDF.nil


class TestLiterals:
    def test_integer_decimal_double_boolean_shorthand(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            :s :int 42 ; :dec 3.14 ; :dbl 1.0e3 ; :flag true .
        """)
        assert graph.value(EX.s, EX.int) == Literal("42", datatype=XSD.integer)
        assert graph.value(EX.s, EX.dec) == Literal("3.14", datatype=XSD.decimal)
        assert graph.value(EX.s, EX.dbl) == Literal("1.0e3", datatype=XSD.double)
        assert graph.value(EX.s, EX.flag) == Literal("true", datatype=XSD.boolean)

    def test_language_tag(self):
        graph = parse_turtle('@prefix : <http://example.org/> .\n:s :p "chat"@fr .')
        assert graph.value(EX.s, EX.p) == Literal("chat", lang="fr")

    def test_datatyped_literal_with_prefixed_datatype(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            :s :p "2021-01-01"^^xsd:date .
        """)
        assert graph.value(EX.s, EX.p) == Literal("2021-01-01", datatype=XSD.date)

    def test_long_string(self):
        graph = parse_turtle('@prefix : <http://example.org/> .\n:s :p """multi\nline""" .')
        assert graph.value(EX.s, EX.p).lexical == "multi\nline"

    def test_single_quoted_string(self):
        graph = parse_turtle("@prefix : <http://example.org/> .\n:s :p 'hello' .")
        assert graph.value(EX.s, EX.p) == Literal("hello")

    def test_escapes_in_string(self):
        graph = parse_turtle('@prefix : <http://example.org/> .\n:s :p "a\\"b\\nc" .')
        assert graph.value(EX.s, EX.p).lexical == 'a"b\nc'

    def test_negative_numbers(self):
        graph = parse_turtle("@prefix : <http://example.org/> .\n:s :p -5 .")
        assert graph.value(EX.s, EX.p) == Literal("-5", datatype=XSD.integer)


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix : <http://example.org/> .\n:s :p :o")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_turtle("@prefix : <http://example.org/> .\n:s :p @@nonsense .")
        assert info.value.line == 2

    def test_a_in_object_position_rejected(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix : <http://example.org/> .\n:s :p a .")

    def test_comments_are_ignored(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> . # bind the prefix
            # a full-line comment
            :s :p :o . # trailing comment
        """)
        assert len(graph) == 1


class TestSerialiser:
    def test_round_trip_paper_example(self):
        from repro.workloads import PAPER_EXAMPLE_TURTLE

        graph = parse_turtle(PAPER_EXAMPLE_TURTLE)
        assert parse_turtle(graph.serialize("turtle")) == graph

    def test_round_trip_with_varied_literals(self):
        graph = Graph([
            Triple(EX.s, EX.p, Literal(42)),
            Triple(EX.s, EX.p, Literal("text")),
            Triple(EX.s, EX.p, Literal("chat", lang="fr")),
            Triple(EX.s, EX.p, Literal("2021-01-01", datatype=XSD.date)),
            Triple(EX.s, EX.q, Literal(True)),
            Triple(EX.s, EX.q, Literal("3.5", datatype=XSD.decimal)),
            Triple(BNode("b"), EX.p, EX.o),
        ])
        assert parse_turtle(graph.serialize("turtle")) == graph

    def test_uses_a_for_rdf_type(self):
        graph = Graph([Triple(EX.john, RDF.type, FOAF.Person)])
        assert " a " in graph.serialize("turtle")

    def test_groups_subjects_and_predicates(self):
        graph = parse_turtle("""
            @prefix : <http://example.org/> .
            :s :p 1, 2 ; :q 3 .
        """)
        text = graph.serialize("turtle")
        # one subject block, commas for the object list
        assert text.count(":s") == 1
        assert "1, 2" in text

    def test_unknown_namespace_falls_back_to_full_iri(self):
        graph = Graph([Triple(IRI("http://nowhere.example/x"), EX.p, Literal(1))])
        assert "<http://nowhere.example/x>" in graph.serialize("turtle")
