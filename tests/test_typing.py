"""Tests for shape labels and shape typings (the τ objects of Section 8)."""

import pytest

from repro.rdf import EX
from repro.shex import ShapeLabel, ShapeTyping


class TestShapeLabel:
    def test_equality_by_name(self):
        assert ShapeLabel("Person") == ShapeLabel("Person")
        assert ShapeLabel("Person") != ShapeLabel("Company")

    def test_hashable(self):
        assert len({ShapeLabel("Person"), ShapeLabel("Person")}) == 1

    def test_ordering(self):
        assert ShapeLabel("A") < ShapeLabel("B")

    def test_str(self):
        assert str(ShapeLabel("Person")) == "Person"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ShapeLabel("")

    def test_is_immutable(self):
        label = ShapeLabel("Person")
        with pytest.raises(AttributeError):
            label.name = "Other"


class TestShapeTyping:
    def test_empty_typing(self):
        typing = ShapeTyping.empty()
        assert len(typing) == 0
        assert not typing
        assert typing.labels_for(EX.john) == frozenset()

    def test_single(self):
        typing = ShapeTyping.single(EX.john, "Person")
        assert typing.has(EX.john, "Person")
        assert typing.has(EX.john, ShapeLabel("Person"))
        assert not typing.has(EX.john, "Company")
        assert not typing.has(EX.bob, "Person")

    def test_add_returns_new_typing(self):
        original = ShapeTyping.empty()
        extended = original.add(EX.john, "Person")
        assert not original  # unchanged
        assert extended.has(EX.john, "Person")

    def test_add_accumulates_labels_per_node(self):
        typing = ShapeTyping.empty().add(EX.john, "Person").add(EX.john, "Employee")
        assert typing.labels_for(EX.john) == {ShapeLabel("Person"), ShapeLabel("Employee")}
        assert len(typing) == 1  # one node

    def test_combine_is_union(self):
        left = ShapeTyping.single(EX.john, "Person")
        right = ShapeTyping.single(EX.bob, "Person").add(EX.john, "Employee")
        combined = left.combine(right)
        assert combined.has(EX.john, "Person")
        assert combined.has(EX.john, "Employee")
        assert combined.has(EX.bob, "Person")

    def test_combine_with_empty_is_identity(self):
        typing = ShapeTyping.single(EX.john, "Person")
        assert typing.combine(ShapeTyping.empty()) == typing
        assert ShapeTyping.empty().combine(typing) == typing

    def test_or_operator(self):
        combined = ShapeTyping.single(EX.john, "Person") | ShapeTyping.single(EX.bob, "Person")
        assert len(combined) == 2

    def test_combine_is_commutative_and_associative(self):
        t1 = ShapeTyping.single(EX.a, "S1")
        t2 = ShapeTyping.single(EX.b, "S2")
        t3 = ShapeTyping.single(EX.a, "S3")
        assert t1 | t2 == t2 | t1
        assert (t1 | t2) | t3 == t1 | (t2 | t3)

    def test_equality_and_hash(self):
        t1 = ShapeTyping.single(EX.john, "Person")
        t2 = ShapeTyping.empty().add(EX.john, ShapeLabel("Person"))
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_membership_and_iteration(self):
        typing = ShapeTyping.single(EX.john, "Person")
        assert EX.john in typing
        assert EX.bob not in typing
        assert list(typing.nodes()) == [EX.john]
        items = dict(typing.items())
        assert items[EX.john] == {ShapeLabel("Person")}

    def test_to_dict(self):
        typing = ShapeTyping.single(EX.john, "Person").add(EX.john, "Agent")
        as_dict = typing.to_dict()
        assert as_dict == {"<http://example.org/john>": ["Agent", "Person"]}

    def test_empty_label_sets_are_dropped(self):
        typing = ShapeTyping({EX.john: []})
        assert len(typing) == 0

    def test_is_immutable(self):
        typing = ShapeTyping.single(EX.john, "Person")
        with pytest.raises(AttributeError):
            typing._map = None
        with pytest.raises(AttributeError):
            typing._hash = 0

    def test_repr_is_readable(self):
        text = repr(ShapeTyping.single(EX.john, "Person"))
        assert "john" in text and "Person" in text

    def test_adding_a_present_association_returns_self(self):
        typing = ShapeTyping.single(EX.john, "Person")
        assert typing.add(EX.john, "Person") is typing

    def test_combine_shares_structure_with_derived_typings(self):
        base = ShapeTyping.empty()
        for i in range(50):
            base = base.add(EX[f"p{i}"], "Person")
        derived = base.add(EX.extra, "Person")
        # combining a typing with one derived from it returns the superset
        # itself: the shared subtries are recognised, not re-merged
        assert base.combine(derived) is derived
        assert derived.combine(base) is derived

    def test_combine_returns_an_independent_covering_typing(self):
        # same contents but no shared history (e.g. the superset crossed a
        # process boundary): coverage is still recognised by value
        small = ShapeTyping.from_pairs([(EX.a, "S")])
        big = ShapeTyping.from_pairs(
            [(EX.a, "S"), (EX.a, "T"), (EX.b, "S")])
        assert small.combine(big) is big
        assert big.combine(small) is big

    def test_hash_is_cached(self):
        typing = ShapeTyping.single(EX.john, "Person").add(EX.bob, "Person")
        assert typing._hash is None
        first = hash(typing)
        assert typing._hash == first
        assert hash(typing) == first

    def test_from_pairs(self):
        typing = ShapeTyping.from_pairs([
            (EX.john, "Person"), (EX.john, ShapeLabel("Employee")),
            (EX.bob, "Person"),
        ])
        assert typing.labels_for(EX.john) == \
            {ShapeLabel("Person"), ShapeLabel("Employee")}
        assert typing.labels_for(EX.bob) == {ShapeLabel("Person")}
        assert ShapeTyping.from_pairs([]) is ShapeTyping.empty()

    def test_to_dict_is_sorted_by_node(self):
        typing = ShapeTyping.from_pairs(
            (EX[f"n{i}"], "S") for i in reversed(range(10)))
        keys = list(typing.to_dict())
        assert keys == sorted(keys)
