"""Property-based tests for the typing algebra of Section 8.

Randomised sequences of ``add``/``combine`` are interpreted twice: once over
the HAMT-backed :class:`ShapeTyping` and once over a plain dict-of-sets
reference model, then compared.  On top of the model agreement, the paper's
algebra laws are asserted directly — ``⊎`` is associative, commutative and
idempotent, ``empty`` is its identity, ``add`` is order-independent — and
``hash``/``eq`` must be consistent with the reference's value equality
regardless of how a typing was constructed (these are the merge-operator
laws the soundness of bulk confirmation rests on).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import EX
from repro.rdf.terms import IRI
from repro.shex import ShapeLabel, ShapeTyping

#: small pools force overlap, shared subtries and per-node label unions
_NODES = [EX[f"node{i}"] for i in range(8)]
_LABELS = [ShapeLabel(name) for name in ("S0", "S1", "S2", "S3", "S4")]

#: one (node, label) association
pairs = st.tuples(st.sampled_from(_NODES), st.sampled_from(_LABELS))
#: a construction recipe: the sequence of associations added, in order
traces = st.lists(pairs, max_size=40)


def build(trace: List[Tuple[IRI, ShapeLabel]]) -> ShapeTyping:
    typing = ShapeTyping.empty()
    for node, label in trace:
        typing = typing.add(node, label)
    return typing


def model_of(trace: List[Tuple[IRI, ShapeLabel]]) -> Dict[IRI, Set[ShapeLabel]]:
    model: Dict[IRI, Set[ShapeLabel]] = {}
    for node, label in trace:
        model.setdefault(node, set()).add(label)
    return model


def contents(typing: ShapeTyping) -> Dict[IRI, FrozenSet[ShapeLabel]]:
    return dict(typing.items())


class TestAddAgainstTheReferenceModel:
    @given(trace=traces)
    def test_add_matches_the_dict_model(self, trace):
        typing = build(trace)
        model = model_of(trace)
        assert contents(typing) == {node: frozenset(labels)
                                    for node, labels in model.items()}
        assert len(typing) == len(model)
        for node, labels in model.items():
            assert typing.labels_for(node) == frozenset(labels)
            for label in labels:
                assert typing.has(node, label)

    @given(trace=traces, data=st.data())
    def test_add_is_order_independent(self, trace, data):
        shuffled = data.draw(st.permutations(trace))
        left, right = build(trace), build(shuffled)
        assert left == right
        assert hash(left) == hash(right)
        assert left.to_dict() == right.to_dict()
        assert repr(left) == repr(right)

    @given(trace=traces)
    def test_constructor_and_adds_agree(self, trace):
        # building through the public Mapping constructor must meet the
        # same value as accreting one association at a time
        model = model_of(trace)
        assert ShapeTyping(model) == build(trace)

    @given(trace=traces, extra=pairs)
    def test_adding_a_present_association_is_a_no_op(self, trace, extra):
        typing = build(trace).add(*extra)
        again = typing.add(*extra)
        assert again is typing


class TestCombineLaws:
    @given(a=traces, b=traces)
    def test_combine_matches_the_model_union(self, a, b):
        combined = build(a).combine(build(b))
        model = model_of(a + b)
        assert contents(combined) == {node: frozenset(labels)
                                      for node, labels in model.items()}

    @given(a=traces, b=traces)
    def test_combine_is_commutative(self, a, b):
        ta, tb = build(a), build(b)
        assert ta | tb == tb | ta

    @given(a=traces, b=traces, c=traces)
    @settings(max_examples=50)
    def test_combine_is_associative(self, a, b, c):
        ta, tb, tc = build(a), build(b), build(c)
        assert (ta | tb) | tc == ta | (tb | tc)

    @given(a=traces)
    def test_combine_is_idempotent(self, a):
        typing = build(a)
        assert typing | typing == typing

    @given(a=traces)
    def test_empty_is_the_identity(self, a):
        typing = build(a)
        assert typing | ShapeTyping.empty() == typing
        assert ShapeTyping.empty() | typing == typing
        # … returning the very same object, not just an equal one
        assert (typing | ShapeTyping.empty()) is typing

    @given(a=traces, extra=pairs)
    def test_add_is_combining_a_singleton(self, a, extra):
        typing = build(a)
        node, label = extra
        assert typing.add(node, label) == \
            typing.combine(ShapeTyping.single(node, label))

    @given(a=traces, b=traces)
    def test_combine_absorbs_subsumed_typings(self, a, b):
        # τ1 ⊎ (τ1 ⊎ τ2) == τ1 ⊎ τ2: combine with something already covered
        # by the left side changes nothing
        ta, tb = build(a), build(b)
        combined = ta | tb
        assert ta | combined == combined
        assert combined | ta == combined


class TestHashEqConsistency:
    @given(a=traces, b=traces)
    def test_eq_and_hash_follow_the_reference_model(self, a, b):
        ta, tb = build(a), build(b)
        model_equal = model_of(a) == model_of(b)
        assert (ta == tb) == model_equal
        if model_equal:
            assert hash(ta) == hash(tb)

    @given(a=traces, b=traces)
    def test_combined_typings_hash_consistently(self, a, b):
        # the same value reached through different operation trees
        # (combine vs sequential adds) must hash identically
        combined = build(a) | build(b)
        accreted = build(a + b)
        assert combined == accreted
        assert hash(combined) == hash(accreted)

    @given(a=traces)
    def test_hash_is_cached_after_first_use(self, a):
        typing = build(a)
        first = hash(typing)
        assert typing._hash is not None
        assert hash(typing) == first
