"""Tests for the Validator façade and validation reports."""

import pytest

from repro.rdf import EX, FOAF, Graph, Literal, Triple
from repro.shex import (
    BacktrackingEngine,
    DerivativeEngine,
    ENGINES,
    Schema,
    SchemaError,
    ShapeLabel,
    Validator,
    arc,
    get_engine,
    star,
    value_set,
)
from repro.shex.sparql_gen import SparqlEngine
from repro.workloads import paper_example_graph, person_schema


class TestEngineRegistry:
    def test_default_engine_is_derivatives(self):
        assert isinstance(get_engine(), DerivativeEngine)

    def test_engine_by_name(self):
        assert isinstance(get_engine("derivatives"), DerivativeEngine)
        assert isinstance(get_engine("backtracking"), BacktrackingEngine)

    def test_engine_options_are_forwarded(self):
        engine = get_engine("derivatives", simplify=False)
        assert engine.simplify is False
        engine = get_engine("backtracking", budget=10)
        assert engine.budget == 10

    def test_engine_instances_pass_through(self):
        engine = SparqlEngine()
        assert get_engine(engine) is engine

    def test_unknown_engine_name(self):
        with pytest.raises(ValueError):
            get_engine("magic")

    def test_invalid_engine_object(self):
        with pytest.raises(TypeError):
            get_engine(42)

    def test_registry_lists_both_engines(self):
        assert set(ENGINES) == {"derivatives", "backtracking"}


class TestNodeValidation:
    def test_paper_example_verdicts(self, engine_name):
        validator = Validator(paper_example_graph(), person_schema(), engine=engine_name)
        assert validator.validate_node(EX.john, "Person").conforms
        assert validator.validate_node(EX.bob, "Person").conforms
        assert not validator.validate_node(EX.mary, "Person").conforms

    def test_default_label_is_the_start_shape(self):
        validator = Validator(paper_example_graph(), person_schema())
        assert validator.validate_node(EX.john).conforms

    def test_missing_start_shape_raises(self):
        schema = Schema({"A": arc(EX.p), "B": arc(EX.q)})  # two shapes, no start
        validator = Validator(Graph(), schema)
        with pytest.raises(SchemaError):
            validator.validate_node(EX.x)

    def test_report_entry_contains_reason_on_failure(self):
        validator = Validator(paper_example_graph(), person_schema())
        entry = validator.validate_node(EX.mary, "Person")
        assert not entry.conforms
        assert entry.reason
        assert "mary" in str(entry)

    def test_expression_level_matching_without_schema(self):
        graph = Graph([Triple(EX.n, EX.p, Literal(1))])
        validator = Validator(graph)
        result = validator.node_matches_expression(EX.n, star(arc(EX.p, value_set(1))))
        assert result.matched


class TestMapAndGraphValidation:
    def test_validate_map(self):
        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_map({EX.john: "Person", EX.mary: "Person"})
        assert len(report) == 2
        assert not report.conforms
        assert len(report.failures()) == 1
        assert report.entry_for(EX.john).conforms
        assert not report.entry_for(EX.mary, "Person").conforms
        assert report.typing.has(EX.john, "Person")
        assert not report.typing.has(EX.mary, "Person")

    def test_conforming_nodes_reproduces_example_2(self, engine_name):
        validator = Validator(paper_example_graph(), person_schema(), engine=engine_name)
        assert validator.conforming_nodes("Person") == [EX.bob, EX.john]

    def test_validate_graph_covers_every_subject(self):
        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_graph()
        assert len(report) == 3  # three subjects × one shape
        assert {entry.node for entry in report} == {EX.john, EX.bob, EX.mary}
        assert report.typing.labels_for(EX.john) == {ShapeLabel("Person")}

    def test_infer_typing_with_multiple_shapes(self):
        schema = Schema({
            "HasAge": star(arc(FOAF.age)),
            "HasName": arc(FOAF.name) & star(arc(FOAF.age)) & star(arc(FOAF.knows)),
        })
        validator = Validator(paper_example_graph(), schema)
        typing = validator.infer_typing()
        # :mary has only age arcs, so she satisfies HasAge but not HasName
        assert typing.has(EX.mary, "HasAge")
        assert not typing.has(EX.mary, "HasName")
        assert typing.has(EX.john, "HasName")

    def test_infer_typing_requires_schema(self):
        validator = Validator(Graph())
        with pytest.raises(SchemaError):
            validator.infer_typing()

    def test_validate_graph_requires_schema(self):
        validator = Validator(Graph())
        with pytest.raises(SchemaError):
            validator.validate_graph()

    def test_report_renders_as_text(self):
        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_graph()
        text = str(report)
        assert "conforms" in text
        assert "does NOT conform" in text

    def test_report_total_stats_aggregates(self):
        validator = Validator(paper_example_graph(), person_schema())
        report = validator.validate_graph()
        totals = report.total_stats()
        per_entry = sum(entry.stats.derivative_steps for entry in report)
        assert totals.derivative_steps == per_entry


class TestEngineInterchangeability:
    def test_all_engines_agree_on_the_paper_example(self):
        graph, schema = paper_example_graph(), person_schema()
        expected = [EX.bob, EX.john]
        for engine in (DerivativeEngine(), BacktrackingEngine(), SparqlEngine()):
            validator = Validator(graph, schema, engine=engine)
            assert validator.conforming_nodes("Person") == expected, engine.name

    def test_sparql_engine_differs_only_on_recursive_semantics(self):
        # :ghost is referenced but is not a Person; SPARQL only approximates
        graph = Graph()
        graph.add(Triple(EX.a, FOAF.age, Literal(40)))
        graph.add(Triple(EX.a, FOAF.name, Literal("Ada")))
        graph.add(Triple(EX.a, FOAF.knows, EX.ghost))
        schema = person_schema()
        assert not Validator(graph, schema).validate_node(EX.a, "Person").conforms
        assert Validator(graph, schema, engine=SparqlEngine()) \
            .validate_node(EX.a, "Person").conforms
