"""Tests for the workload generators: ground truth must match the validators."""

import pytest

from repro.rdf import FOAF, Literal, Triple
from repro.shex import BacktrackingEngine, DerivativeEngine, Validator
from repro.workloads import (
    PAPER_EXAMPLE_TURTLE,
    balanced_alternation_case,
    cardinality_case,
    generate_person_workload,
    generate_portal_workload,
    interleave_width_case,
    knows_chain_graph,
    knows_cycle_graph,
    knows_tree_graph,
    mixed_portal_case,
    paper_example_graph,
    paper_interleave_case,
    person_schema,
    portal_schema,
    star_case,
)


class TestPaperExampleFixtures:
    def test_example_graph_has_eight_triples(self):
        assert len(paper_example_graph()) == 8

    def test_turtle_source_round_trips(self):
        from repro.rdf import parse_turtle

        assert parse_turtle(PAPER_EXAMPLE_TURTLE) == paper_example_graph()

    def test_person_schema_has_a_start_shape(self):
        assert str(person_schema().start) == "Person"


class TestPersonWorkload:
    def test_ground_truth_matches_validator(self):
        workload = generate_person_workload(num_people=30, invalid_fraction=0.3, seed=11)
        validator = Validator(workload.graph, workload.schema)
        conforming = set(validator.conforming_nodes("Person"))
        assert conforming == set(workload.valid_nodes)

    def test_all_violation_kinds_are_exercised(self):
        workload = generate_person_workload(num_people=40, invalid_fraction=0.5, seed=5)
        assert {"duplicate_age", "missing_name", "bad_age_type",
                "extra_predicate", "knows_literal"} <= set(workload.invalid_nodes.values())

    def test_determinism_by_seed(self):
        first = generate_person_workload(num_people=15, seed=42)
        second = generate_person_workload(num_people=15, seed=42)
        assert first.graph == second.graph
        assert first.valid_nodes == second.valid_nodes

    def test_invalid_fraction_zero_and_one(self):
        all_valid = generate_person_workload(num_people=10, invalid_fraction=0.0, seed=1)
        assert not all_valid.invalid_nodes
        all_invalid = generate_person_workload(num_people=10, invalid_fraction=1.0, seed=1)
        assert not all_invalid.valid_nodes

    def test_invalid_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            generate_person_workload(invalid_fraction=1.5)

    def test_all_nodes_property(self):
        workload = generate_person_workload(num_people=12, invalid_fraction=0.25, seed=2)
        assert len(workload.all_nodes) == 12


class TestKnowsTopologies:
    def test_chain_every_member_conforms(self):
        graph, head = knows_chain_graph(depth=8)
        validator = Validator(graph, person_schema())
        typing = validator.infer_typing()
        assert len(typing) == 9

    def test_chain_with_broken_tail_fails_from_the_head(self):
        graph, head = knows_chain_graph(depth=4)
        tail = sorted(graph.nodes(), key=lambda node: node.value)[-1]
        graph.add(Triple(tail, FOAF.age, Literal(200)))  # duplicate age on the tail
        assert not Validator(graph, person_schema()).validate_node(head, "Person").conforms

    def test_cycle_conforms_with_both_engines(self, engine_name):
        graph, start = knows_cycle_graph(length=6)
        validator = Validator(graph, person_schema(), engine=engine_name)
        assert validator.validate_node(start, "Person").conforms

    def test_tree_size_and_conformance(self):
        graph, root = knows_tree_graph(depth=3, fanout=2)
        # a complete binary tree of depth 3 has 15 nodes
        assert len(list(graph.nodes())) == 15
        assert Validator(graph, person_schema()).validate_node(root, "Person").conforms

    def test_degenerate_parameters(self):
        graph, head = knows_chain_graph(depth=0)
        assert len(graph) == 2  # age + name only
        with pytest.raises(ValueError):
            knows_chain_graph(-1)
        with pytest.raises(ValueError):
            knows_cycle_graph(0)
        with pytest.raises(ValueError):
            knows_tree_graph(2, fanout=0)


class TestPortalWorkload:
    def test_ground_truth_matches_validator(self):
        workload = generate_portal_workload(num_datasets=25, invalid_fraction=0.3, seed=9)
        validator = Validator(workload.graph, workload.schema)
        conforming = {dataset for dataset in workload.datasets
                      if validator.validate_node(dataset, "Dataset").conforms}
        assert conforming == set(workload.valid_datasets)

    def test_publishers_conform(self):
        workload = generate_portal_workload(num_datasets=10, seed=4)
        validator = Validator(workload.graph, workload.schema)
        for publisher in workload.publishers:
            assert validator.validate_node(publisher, "Publisher").conforms

    def test_schema_shapes(self):
        schema = portal_schema()
        assert {str(label) for label in schema.labels()} == \
            {"Dataset", "Distribution", "Publisher"}

    def test_determinism_by_seed(self):
        assert generate_portal_workload(num_datasets=8, seed=3).graph == \
            generate_portal_workload(num_datasets=8, seed=3).graph

    def test_invalid_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            generate_portal_workload(invalid_fraction=-0.1)


class TestScalingCases:
    @pytest.mark.parametrize("factory, expected_size", [
        (lambda: star_case(10), 10),
        (lambda: paper_interleave_case(6), 7),
        (lambda: interleave_width_case(4), 4),
        (lambda: balanced_alternation_case(3), 6),
        (lambda: cardinality_case(1, 2, 2), 2),
        (lambda: mixed_portal_case(5), 7),
    ])
    def test_case_sizes(self, factory, expected_size):
        assert factory().size == expected_size

    def test_cases_are_correct_for_both_engines(self):
        cases = [
            star_case(6), star_case(6, matching=False),
            paper_interleave_case(4), paper_interleave_case(4, matching=False),
            interleave_width_case(3), interleave_width_case(3, matching=False),
            balanced_alternation_case(2), cardinality_case(1, 3, 2),
            cardinality_case(2, 3, 1), mixed_portal_case(4),
        ]
        for case in cases:
            for engine in (DerivativeEngine(), BacktrackingEngine()):
                result = engine.match_neighbourhood(case.expression, case.triples)
                assert result.matched == case.expected, (case.name, engine.name)

    def test_parameters_are_recorded(self):
        case = cardinality_case(2, 5, 3)
        assert case.parameters == {"min": 2, "max": 5, "arcs": 3}
